"""Register usage set computation (paper sections 4.2.3-4.2.4, Figure 6).

For every procedure, four disjoint register sets steer the second phase's
allocator:

* ``FREE``   — usable without save/restore, may hold values across calls;
* ``CALLER`` — usable without save/restore, clobbered at calls;
* ``CALLEE`` — must be saved/restored if used, survive calls;
* ``MSPILL`` — saved/restored unconditionally at cluster roots (the
  root executes the spill code for the whole cluster).

Cluster roots are processed bottom-up so spill code migrates upward:
when a parent cluster reaches a child root whose ``MSPILL`` registers are
still available along every path from the parent root, those registers
move into the parent root's ``MSPILL`` — the save/restore climbs the call
graph (section 4.2.4).

Two deliberate strengthenings over the paper's Figure 6 pseudocode:

* at a child root, the newly freed registers are also removed from its
  ``AVAIL`` set before successors intersect it, so a child root that is
  not a leaf of the parent cluster cannot leak its FREE registers to its
  own successors (the paper assumes child roots are leaves);
* registers reserved for promoted global webs anywhere in a cluster are
  excluded from the root's ``AVAIL`` (the conservative rule of section
  7.6.2's discussion) *and* from every procedure's standard sets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.dominators import DominatorTree
from repro.analysis.packed import iter_bits, resolve_dataflow
from repro.analyzer.clusters import Cluster
from repro.callgraph.graph import CallGraph
from repro.obs.tracer import current_tracer
from repro.target.registers import CALLEE_SAVES, CALLER_SAVES


def _regs_mask(registers) -> int:
    """Register set -> bitmask (registers are small ints, so the bit
    position *is* the register number)."""
    mask = 0
    for register in registers:
        mask |= 1 << register
    return mask


_CALLER_SAVES_MASK = _regs_mask(CALLER_SAVES)
_CALLEE_SAVES_MASK = _regs_mask(CALLEE_SAVES)

#: mask -> register tuple.  Register masks draw from one machine word
#: and only a handful of distinct values occur per program, so decoding
#: is memoized (the final masks->RegisterSets conversion runs once per
#: procedure).
_REGS_OF_MASK: dict[int, tuple] = {}


def _regs_of(mask: int) -> tuple:
    registers = _REGS_OF_MASK.get(mask)
    if registers is None:
        registers = tuple(iter_bits(mask))
        _REGS_OF_MASK[mask] = registers
    return registers


_FROZEN_OF_MASK: dict[int, frozenset] = {}


def _frozen_of(mask: int) -> frozenset:
    value = _FROZEN_OF_MASK.get(mask)
    if value is None:
        value = _FROZEN_OF_MASK[mask] = frozenset(iter_bits(mask))
    return value


@dataclass
class RegisterSets:
    """Mutable per-procedure usage sets during analysis."""

    free: set = field(default_factory=set)
    caller: set = field(default_factory=set)
    callee: set = field(default_factory=set)
    mspill: set = field(default_factory=set)


def compute_register_sets(
    graph: CallGraph,
    clusters: list,
    dominators: Optional[DominatorTree] = None,
    web_reserved: Optional[dict] = None,
) -> dict:
    """Compute FREE/CALLER/CALLEE/MSPILL for every procedure.

    Args:
        graph: Program call graph.
        clusters: Clusters from :func:`identify_clusters`.
        dominators: Call-graph dominator tree (recomputed if omitted).
        web_reserved: procedure name -> set of registers reserved for
            promoted globals in that procedure.

    Returns:
        name -> :class:`RegisterSets`.
    """
    if dominators is None:
        dominators = graph.dominator_tree()
    web_reserved = web_reserved or {}

    if resolve_dataflow() == "packed":
        return _compute_register_sets_packed(
            graph, clusters, dominators, web_reserved
        )

    sets: dict[str, RegisterSets] = {}
    for name in graph.nodes:
        reserved = set(web_reserved.get(name, ()))
        sets[name] = RegisterSets(
            free=set(),
            caller=set(CALLER_SAVES),
            callee=set(CALLEE_SAVES) - reserved,
            mspill=set(),
        )

    roots = {cluster.root for cluster in clusters}
    avail: dict[str, set] = {}

    for cluster in _bottom_up(clusters, dominators):
        _process_cluster(graph, cluster, roots, sets, avail, web_reserved)
    return sets


def _compute_register_sets_packed(
    graph: CallGraph,
    clusters: list,
    dominators: DominatorTree,
    web_reserved: dict,
) -> dict:
    """Bitmask mirror of Figure 6: the per-procedure FREE/CALLER/CALLEE/
    MSPILL sets and the AVAIL intersections are single integers while
    the clusters are processed, converted to :class:`RegisterSets` sets
    at the end.  Control flow (cluster order, Kahn worklist, register
    priority order, tracer events) matches the reference kernel exactly.
    """
    # Web-reserved registers as masks, computed once (the dict is sparse
    # relative to the node count).
    reserved_masks = {
        name: _regs_mask(registers)
        for name, registers in web_reserved.items()
        if registers
    }

    # Per-name [free, caller, callee, mspill] masks.
    masks: dict[str, list] = {}
    for name in graph.nodes:
        reserved = reserved_masks.get(name, 0)
        masks[name] = [
            0, _CALLER_SAVES_MASK, _CALLEE_SAVES_MASK & ~reserved, 0
        ]

    roots = {cluster.root for cluster in clusters}
    avail: dict[str, int] = {}

    for cluster in _bottom_up(clusters, dominators):
        _process_cluster_packed(
            graph, cluster, roots, masks, avail, reserved_masks
        )
    # The emitted sets are frozen and shared across procedures carrying
    # the same mask — nothing mutates them after the fixpoint, and the
    # directive builder's ``frozenset(...)`` wrapping becomes identity.
    return {
        name: RegisterSets(
            free=_frozen_of(free),
            caller=_frozen_of(caller),
            callee=_frozen_of(callee),
            mspill=_frozen_of(mspill),
        )
        for name, (free, caller, callee, mspill) in masks.items()
    }


def _process_cluster_packed(
    graph: CallGraph,
    cluster: Cluster,
    roots: set,
    masks: dict,
    avail: dict,
    reserved_masks: dict,
) -> None:
    root = cluster.root
    members = cluster.members

    child_mspill = 0
    for name in members:
        if name in roots:
            child_mspill |= masks[name][3]
    order = sorted(
        CALLEE_SAVES, key=lambda r: (child_mspill >> r & 1, r)
    )

    reserved_in_cluster = 0
    for name in cluster.all_nodes:
        reserved_in_cluster |= reserved_masks.get(name, 0)

    selectable = [
        r for r in order if not reserved_in_cluster >> r & 1
    ]
    need = graph.nodes[root].summary.callee_saves_needed
    root_masks = masks[root]
    root_callee = _regs_mask(selectable[max(0, len(selectable) - need):])
    root_masks[2] = root_callee
    avail[root] = _regs_mask(selectable) & ~root_callee

    used = [0]
    visited: set = {root}
    pending = set(members)
    # Predecessor maps have unique keys, so counting avoids the per-node
    # set difference allocation.
    unresolved = {
        name: sum(
            1 for p in graph.nodes[name].predecessors if p not in visited
        )
        for name in pending
    }
    ready = [name for name in pending if unresolved[name] == 0]
    heapq.heapify(ready)
    while ready:
        name = heapq.heappop(ready)
        _preallocate_node_packed(
            graph, name, roots, masks, avail, order, used, root
        )
        visited.add(name)
        pending.discard(name)
        for successor in graph.nodes[name].successors:
            if successor in pending:
                unresolved[successor] -= 1
                if unresolved[successor] == 0:
                    heapq.heappush(ready, successor)
    if pending:  # pragma: no cover - clusters are acyclic
        raise AssertionError(
            f"cluster {root}: could not order members {sorted(pending)}"
        )

    root_masks[3] |= used[0]
    for name in members:
        if name in roots:
            continue
        masks[name][1] |= avail[name] & root_masks[3]


def _preallocate_node_packed(
    graph: CallGraph,
    name: str,
    roots: set,
    masks: dict,
    avail: dict,
    order: list,
    used: list,
    cluster_root: Optional[str] = None,
) -> None:
    node_avail = None
    for predecessor in graph.nodes[name].predecessors:
        pred_avail = avail.get(predecessor, 0)
        node_avail = (
            pred_avail if node_avail is None else node_avail & pred_avail
        )
    if node_avail is None:
        node_avail = 0
    node_masks = masks[name]

    if name in roots:
        mspill = node_masks[3]
        moved = mspill & node_avail
        used[0] |= moved
        tracer = current_tracer()
        if tracer.enabled:
            kept = mspill & ~node_avail
            if moved:
                tracer.event(
                    "mspill-migrated",
                    node=name,
                    cluster_root=cluster_root,
                    registers=set(iter_bits(moved)),
                )
            if kept:
                tracer.event(
                    "mspill-kept",
                    node=name,
                    cluster_root=cluster_root,
                    registers=set(iter_bits(kept)),
                    reason="not-available-on-all-paths",
                )
        node_masks[3] = mspill & ~node_avail
        freed = node_masks[2] & node_avail
        used[0] |= freed
        node_masks[0] |= freed
        node_masks[2] &= ~freed
        avail[name] = node_avail & ~node_masks[0]
    else:
        need = graph.nodes[name].summary.callee_saves_needed
        taken = 0
        if need > 0:
            count = 0
            for register in order:
                if node_avail >> register & 1:
                    taken |= 1 << register
                    count += 1
                    if count >= need:
                        break
        node_masks[0] |= taken
        node_avail &= ~taken
        node_masks[2] &= ~(taken | node_avail)
        used[0] |= taken
        avail[name] = node_avail


def _bottom_up(clusters: list, dominators: DominatorTree) -> list:
    """Deepest (in the dominator tree) cluster roots first, so nested
    clusters are processed before the clusters containing them."""

    def depth(name: str) -> int:
        return len(dominators.dominators_of(name))

    return sorted(clusters, key=lambda c: (-depth(c.root), c.root))


def _cluster_register_order(child_mspill: set) -> list:
    """Selection order for preallocation: registers *not* in a child
    root's MSPILL first, so those stay available for upward motion."""
    return sorted(CALLEE_SAVES, key=lambda r: (r in child_mspill, r))


def _process_cluster(
    graph: CallGraph,
    cluster: Cluster,
    roots: set,
    sets: dict,
    avail: dict,
    web_reserved: dict,
) -> None:
    root = cluster.root
    members = cluster.members
    all_nodes = cluster.all_nodes

    child_mspill: set = set()
    for name in members:
        if name in roots:
            child_mspill |= sets[name].mspill
    order = _cluster_register_order(child_mspill)

    reserved_in_cluster: set = set()
    for name in all_nodes:
        reserved_in_cluster |= set(web_reserved.get(name, ()))

    # Root's own callee-saves selection: take the registers *least*
    # attractive for preallocation (end of the priority order), skipping
    # web-reserved registers.
    selectable = [r for r in order if r not in reserved_in_cluster]
    need = graph.nodes[root].summary.callee_saves_needed
    root_sets = sets[root]
    root_callee = set(selectable[max(0, len(selectable) - need):])
    root_sets.callee = root_callee
    avail[root] = set(selectable) - root_callee

    used: set = set()
    visited: set = {root}
    # Kahn worklist over the (acyclic) cluster subgraph: a member is
    # ready once every predecessor has been processed, and among ready
    # members the smallest name goes first — the same order the old
    # sort-and-rescan sweep produced, without re-scanning the whole
    # pending set after every node.
    pending = set(members)
    unresolved = {
        name: sum(
            1 for p in graph.nodes[name].predecessors if p not in visited
        )
        for name in pending
    }
    ready = [name for name in pending if unresolved[name] == 0]
    heapq.heapify(ready)
    while ready:
        name = heapq.heappop(ready)
        _preallocate_node(
            graph, name, roots, sets, avail, order, used, root
        )
        visited.add(name)
        pending.discard(name)
        for successor in graph.nodes[name].successors:
            if successor in pending:
                unresolved[successor] -= 1
                if unresolved[successor] == 0:
                    heapq.heappush(ready, successor)
    if pending:  # pragma: no cover - clusters are acyclic
        raise AssertionError(
            f"cluster {root}: could not order members {sorted(pending)}"
        )

    root_sets.mspill |= used
    # Post-pass (Figure 7): callee-saves registers the root spills that
    # remain available at an intermediate node can serve as extra
    # caller-saves registers there.
    for name in members:
        if name in roots:
            continue
        sets[name].caller |= avail[name] & root_sets.mspill


def _preallocate_node(
    graph: CallGraph,
    name: str,
    roots: set,
    sets: dict,
    avail: dict,
    order: list,
    used: set,
    cluster_root: Optional[str] = None,
) -> None:
    node_avail: Optional[set] = None
    for predecessor in graph.nodes[name].predecessors:
        pred_avail = avail.get(predecessor, set())
        node_avail = (
            set(pred_avail) if node_avail is None else node_avail & pred_avail
        )
    node_avail = node_avail or set()
    node_sets = sets[name]

    if name in roots:
        # A nested cluster root: move its spill code upward.
        moved = node_sets.mspill & node_avail
        used |= moved
        tracer = current_tracer()
        if tracer.enabled:
            kept = node_sets.mspill - node_avail
            if moved:
                tracer.event(
                    "mspill-migrated",
                    node=name,
                    cluster_root=cluster_root,
                    registers=moved,
                )
            if kept:
                tracer.event(
                    "mspill-kept",
                    node=name,
                    cluster_root=cluster_root,
                    registers=kept,
                    reason="not-available-on-all-paths",
                )
        node_sets.mspill -= node_avail
        freed = node_sets.callee & node_avail
        used |= freed
        node_sets.free |= freed
        node_sets.callee -= freed
        # Strengthening: the child's FREE registers may hold values
        # across its calls, so its in-cluster successors must not
        # preallocate them.
        avail[name] = node_avail - node_sets.free
    else:
        need = graph.nodes[name].summary.callee_saves_needed
        taken = _get_registers(need, node_avail, order)
        node_sets.free |= taken
        node_avail -= taken
        node_sets.callee -= taken | node_avail
        used |= taken
        avail[name] = node_avail


def _get_registers(count: int, available: set, order: list) -> set:
    """Figure 6's Get_Registers: up to ``count`` registers from
    ``available`` in the cluster's priority order."""
    chosen: set = set()
    for register in order:
        if len(chosen) >= count:
            break
        if register in available:
            chosen.add(register)
    return chosen


def check_register_set_invariants(
    sets: dict, roots: set, web_reserved: Optional[dict] = None
) -> None:
    """Assert disjointness and placement rules.  Used by tests.

    Registers in ``caller`` beyond the standard convention must come
    from spill code motion, i.e. appear in some cluster root's MSPILL;
    FREE/CALLEE/MSPILL draw from the callee-saves half of the register
    file only; registers reserved for promoted webs (``web_reserved``:
    name -> registers, when the caller tracks webs) may appear in none
    of the four sets.
    """
    all_mspill: set = set()
    for name in roots:
        if name in sets:
            all_mspill |= sets[name].mspill
    for name, rs in sets.items():
        labelled = {
            "free": rs.free,
            "caller": rs.caller,
            "callee": rs.callee,
            "mspill": rs.mspill,
        }
        labels = list(labelled)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                overlap = labelled[a] & labelled[b]
                if overlap:
                    raise AssertionError(
                        f"{name}: {a} and {b} overlap: {sorted(overlap)}"
                    )
        if web_reserved is not None:
            reserved = set(web_reserved.get(name, ()))
            for label, regs in labelled.items():
                overlap = regs & reserved
                if overlap:
                    raise AssertionError(
                        f"{name}: web-reserved registers "
                        f"{sorted(overlap)} appear in {label}"
                    )
        if rs.mspill and name not in roots:
            raise AssertionError(
                f"{name}: MSPILL non-empty at a non-root"
            )
        for label in ("free", "callee", "mspill"):
            stray = labelled[label] - CALLEE_SAVES
            if stray:
                raise AssertionError(
                    f"{name}: {label} contains non-callee-saves "
                    f"registers {sorted(stray)}"
                )
        stray = rs.caller - CALLER_SAVES - all_mspill
        if stray:
            raise AssertionError(
                f"{name}: caller extends the convention with registers "
                f"{sorted(stray)} not in any cluster root's MSPILL"
            )
