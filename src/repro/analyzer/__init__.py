"""The program analyzer: webs, clusters, register usage sets, database."""

from repro.analyzer.clusters import Cluster, ClusterOptions, identify_clusters
from repro.analyzer.coloring import (
    color_webs_greedy,
    color_webs_priority,
    compute_web_priority,
    select_blanket_globals,
)
from repro.analyzer.database import (
    AnalyzerStatistics,
    ProcedureDirectives,
    ProgramDatabase,
    PromotedGlobal,
    default_directives,
)
from repro.analyzer.driver import analyze_program
from repro.analyzer.interference import WebInterferenceGraph
from repro.analyzer.options import PAPER_CONFIGS, AnalyzerOptions
from repro.analyzer.regsets import RegisterSets, compute_register_sets
from repro.analyzer.webs import Web, WebOptions, identify_webs

__all__ = [
    "AnalyzerOptions",
    "AnalyzerStatistics",
    "Cluster",
    "ClusterOptions",
    "PAPER_CONFIGS",
    "ProcedureDirectives",
    "ProgramDatabase",
    "PromotedGlobal",
    "RegisterSets",
    "Web",
    "WebInterferenceGraph",
    "WebOptions",
    "analyze_program",
    "color_webs_greedy",
    "color_webs_priority",
    "compute_register_sets",
    "compute_web_priority",
    "default_directives",
    "identify_clusters",
    "identify_webs",
    "select_blanket_globals",
]
