"""Program analyzer options, including the paper's Table 4 configurations.

===========  ==============================================================
Config       Meaning (Table 4)
===========  ==============================================================
``A``        spill code motion only, heuristic call counts
``B``        spill code motion only, profiled call counts
``C``        spill motion + web coloring with 6 reserved registers
``D``        spill motion + greedy web coloring
``E``        spill motion + blanket promotion of the 6 hottest globals
``F``        config C with profiled call counts
===========  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analyzer.clusters import ClusterOptions
from repro.analyzer.webs import WebOptions

PAPER_CONFIGS = ("A", "B", "C", "D", "E", "F")


@dataclass
class AnalyzerOptions:
    """Everything that steers one analyzer run."""

    global_promotion: str = "webs"  # "webs" | "blanket" | "none"
    coloring: str = "priority"  # "priority" | "greedy"
    num_web_registers: int = 6
    blanket_count: int = 6
    spill_code_motion: bool = True
    profile: Optional[object] = None  # ProfileData
    web_options: WebOptions = field(default_factory=WebOptions)
    cluster_options: ClusterOptions = field(default_factory=ClusterOptions)
    # Partial call graphs (section 7.2): when not None, the analyzer only
    # sees part of the program; the listed procedures may be invoked by
    # unknown outside callers (e.g. a library's exported entry points).
    exported_procedures: Optional[frozenset] = None
    # Globals that outside code may access directly; they become
    # ineligible for promotion (the paper's third partial-graph
    # assumption, made explicit).
    externally_visible_globals: frozenset = frozenset()
    # Caller-saves preallocation (section 7.6.2 / [Chow 88]): propagate
    # each procedure's caller-saves register usage bottom-up so callers
    # can keep values in caller-saves registers across calls whose
    # subtree never touches them.
    caller_saves_preallocation: bool = False

    @classmethod
    def config(cls, letter: str, profile=None) -> "AnalyzerOptions":
        """The paper's Table 4 configuration presets.

        Configs B and F require ``profile`` (a
        :class:`~repro.machine.profiler.ProfileData`).
        """
        letter = letter.upper()
        if letter == "A":
            return cls(global_promotion="none", spill_code_motion=True)
        if letter == "B":
            if profile is None:
                raise ValueError("config B requires profile data")
            return cls(
                global_promotion="none",
                spill_code_motion=True,
                profile=profile,
            )
        if letter == "C":
            return cls(
                global_promotion="webs",
                coloring="priority",
                num_web_registers=6,
            )
        if letter == "D":
            return cls(global_promotion="webs", coloring="greedy")
        if letter == "E":
            return cls(global_promotion="blanket", blanket_count=6)
        if letter == "F":
            if profile is None:
                raise ValueError("config F requires profile data")
            return cls(
                global_promotion="webs",
                coloring="priority",
                num_web_registers=6,
                profile=profile,
            )
        raise ValueError(f"unknown configuration {letter!r}")
