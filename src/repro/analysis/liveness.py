"""Backward liveness analysis.

Written generically over any block graph whose instructions expose
``uses()``/``defs()``: both the IR (:mod:`repro.ir`) and the PRISM machine
code (:mod:`repro.backend`) satisfy the protocol, so the same engine
drives IR dead-code elimination and the backend's register allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, TypeVar

Value = TypeVar("Value", bound=Hashable)


@dataclass
class BlockLiveness:
    """Liveness facts for one block."""

    live_in: set = field(default_factory=set)
    live_out: set = field(default_factory=set)
    use: set = field(default_factory=set)
    define: set = field(default_factory=set)


class LivenessResult:
    """Per-block liveness sets, plus per-instruction iteration support."""

    def __init__(self, blocks: dict[str, BlockLiveness]):
        self.blocks = blocks

    def live_in(self, label: str) -> set:
        return self.blocks[label].live_in

    def live_out(self, label: str) -> set:
        return self.blocks[label].live_out


def compute_liveness(
    labels: Iterable[str],
    successors: Callable[[str], Iterable[str]],
    block_instructions: Callable[[str], list],
    is_trackable: Callable[[object], bool],
) -> LivenessResult:
    """Run backward liveness to a fixpoint.

    Args:
        labels: All block labels.
        successors: Label -> successor labels.
        block_instructions: Label -> instruction list *including* the
            terminator (each exposing ``uses()``/``defs()``).
        is_trackable: Filter for operand values to track (e.g. "is a
            Temp" or "is a virtual register").
    """
    facts: dict[str, BlockLiveness] = {}
    label_list = list(labels)
    for label in label_list:
        fact = BlockLiveness()
        # Scan backward to compute upward-exposed uses and kills.
        for instruction in reversed(block_instructions(label)):
            for defined in instruction.defs():
                fact.use.discard(defined)
                fact.define.add(defined)
            for used in instruction.uses():
                if is_trackable(used):
                    fact.use.add(used)
        facts[label] = fact

    changed = True
    while changed:
        changed = False
        for label in reversed(label_list):
            fact = facts[label]
            live_out: set = set()
            for successor in successors(label):
                live_out |= facts[successor].live_in
            live_in = fact.use | (live_out - fact.define)
            if live_out != fact.live_out or live_in != fact.live_in:
                fact.live_out = live_out
                fact.live_in = live_in
                changed = True
    return LivenessResult(facts)


class _ReturnProxy:
    """Wraps a Return terminator so pinned temps count as used by it."""

    def __init__(self, terminator, extra_uses: list):
        self._terminator = terminator
        self._extra = extra_uses

    def uses(self) -> list:
        return list(self._terminator.uses()) + self._extra

    def defs(self) -> list:
        return []


class _CallProxy:
    """Wraps a call so pinned temps count as both used and redefined.

    A promoted global lives in a register that the *callee* may read and
    write (that is the whole point of web promotion), so from the
    caller's perspective every non-builtin call both uses and clobbers
    the pinned temp.
    """

    def __init__(self, call, pinned: list):
        self._call = call
        self._pinned = pinned

    def uses(self) -> list:
        return list(self._call.uses()) + self._pinned

    def defs(self) -> list:
        return list(self._call.defs()) + self._pinned


def _is_user_call(instruction) -> bool:
    from repro.ir.instructions import Call, CallIndirect

    if isinstance(instruction, CallIndirect):
        return True
    return isinstance(instruction, Call) and not instruction.is_builtin


def compute_ir_liveness(function) -> LivenessResult:
    """Liveness of temps over an :class:`repro.ir.IRFunction`.

    Temps pinned to physical registers (promoted globals) are live at
    every return: the register's value is the global variable as far as
    callers are concerned.
    """
    from repro.ir.instructions import Return
    from repro.ir.values import Temp

    pinned = list(function.pinned_temps)

    def block_instructions(label: str) -> list:
        block = function.blocks[label]
        if pinned:
            instructions = [
                _CallProxy(instruction, pinned)
                if _is_user_call(instruction)
                else instruction
                for instruction in block.instructions
            ]
        else:
            instructions = list(block.instructions)
        if isinstance(block.terminator, Return) and pinned:
            instructions.append(_ReturnProxy(block.terminator, pinned))
        elif block.terminator is not None:
            instructions.append(block.terminator)
        return instructions

    return compute_liveness(
        function.blocks.keys(),
        lambda label: function.blocks[label].successors(),
        block_instructions,
        lambda value: isinstance(value, Temp),
    )
