"""Backward liveness analysis.

Written generically over any block graph whose instructions expose
``uses()``/``defs()``: both the IR (:mod:`repro.ir`) and the PRISM machine
code (:mod:`repro.backend`) satisfy the protocol, so the same engine
drives IR dead-code elimination and the backend's register allocator.

The fixpoint is solved with a worklist seeded in reverse post-order and
popped last-in-first-out (so blocks are first processed successors-first),
re-queueing a block's predecessors only when its ``live_in`` actually
changed — on an acyclic CFG every block is visited exactly once, where
the old round-robin changed-flag sweep recomputed every block's
``live_out`` from scratch each global pass even when no predecessor
changed.  Two interchangeable kernels solve the same equations (the
``REPRO_DATAFLOW`` knob, see :mod:`repro.analysis.packed`): the
``reference`` kernel keeps one Python ``set`` per fact, the default
``packed`` kernel runs the whole fixpoint on integer bit vectors over a
dense value index and converts to sets once at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, TypeVar

from repro.analysis.packed import iter_bits, resolve_dataflow

Value = TypeVar("Value", bound=Hashable)


@dataclass
class BlockLiveness:
    """Liveness facts for one block."""

    live_in: set = field(default_factory=set)
    live_out: set = field(default_factory=set)
    use: set = field(default_factory=set)
    define: set = field(default_factory=set)


class LivenessResult:
    """Per-block liveness sets, plus per-instruction iteration support.

    ``block_visits`` counts worklist pops during the fixpoint — the
    regression guard for the solver's work bound (an acyclic CFG must
    cost exactly one visit per block).
    """

    def __init__(self, blocks: dict[str, BlockLiveness],
                 block_visits: int = 0):
        self.blocks = blocks
        self.block_visits = block_visits

    def live_in(self, label: str) -> set:
        return self.blocks[label].live_in

    def live_out(self, label: str) -> set:
        return self.blocks[label].live_out


def _worklist_order(
    label_list: list, succs: dict, preds: dict
) -> list:
    """Reverse post-order over the CFG, for seeding the worklist.

    Roots are blocks without predecessors (falling back to the first
    block of a fully cyclic graph); unreachable blocks are appended so
    every block is seeded at least once.
    """
    visited: set = set()
    postorder: list = []

    def dfs(root: str) -> None:
        stack = [(root, iter(succs[root]))]
        visited.add(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(succs[successor])))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    roots = [label for label in label_list if not preds[label]]
    if not roots and label_list:
        roots = [label_list[0]]
    for root in roots:
        if root not in visited:
            dfs(root)
    for label in label_list:
        if label not in visited:
            dfs(label)
    return list(reversed(postorder))


def compute_liveness(
    labels: Iterable[str],
    successors: Callable[[str], Iterable[str]],
    block_instructions: Callable[[str], list],
    is_trackable: Callable[[object], bool],
    mode: str | None = None,
) -> LivenessResult:
    """Run backward liveness to a fixpoint.

    Args:
        labels: All block labels.
        successors: Label -> successor labels.
        block_instructions: Label -> instruction list *including* the
            terminator (each exposing ``uses()``/``defs()``).
        is_trackable: Filter for operand values to track (e.g. "is a
            Temp" or "is a virtual register").
        mode: Kernel override; ``None`` consults ``REPRO_DATAFLOW``.
    """
    label_list = list(labels)
    succs = {label: list(successors(label)) for label in label_list}
    preds: dict[str, list] = {label: [] for label in label_list}
    for label in label_list:
        for successor in succs[label]:
            preds[successor].append(label)
    order = _worklist_order(label_list, succs, preds)

    if resolve_dataflow(mode) == "packed":
        return _solve_packed(
            label_list, succs, preds, order, block_instructions,
            is_trackable,
        )
    return _solve_reference(
        label_list, succs, preds, order, block_instructions, is_trackable
    )


def _solve_reference(
    label_list: list,
    succs: dict,
    preds: dict,
    order: list,
    block_instructions: Callable[[str], list],
    is_trackable: Callable[[object], bool],
) -> LivenessResult:
    facts: dict[str, BlockLiveness] = {}
    for label in label_list:
        fact = BlockLiveness()
        # Scan backward to compute upward-exposed uses and kills.
        for instruction in reversed(block_instructions(label)):
            for defined in instruction.defs():
                fact.use.discard(defined)
                fact.define.add(defined)
            for used in instruction.uses():
                if is_trackable(used):
                    fact.use.add(used)
        facts[label] = fact

    # Seeded in reverse post-order, popped LIFO: the first sweep runs
    # successors-first, so acyclic regions converge in one visit each.
    stack = list(order)
    queued = set(order)
    visits = 0
    while stack:
        label = stack.pop()
        queued.discard(label)
        visits += 1
        fact = facts[label]
        live_out: set = set()
        for successor in succs[label]:
            live_out |= facts[successor].live_in
        live_in = fact.use | (live_out - fact.define)
        fact.live_out = live_out
        if live_in != fact.live_in:
            fact.live_in = live_in
            for predecessor in preds[label]:
                if predecessor not in queued:
                    queued.add(predecessor)
                    stack.append(predecessor)
    return LivenessResult(facts, visits)


def _solve_packed(
    label_list: list,
    succs: dict,
    preds: dict,
    order: list,
    block_instructions: Callable[[str], list],
    is_trackable: Callable[[object], bool],
) -> LivenessResult:
    # Dense value index, assigned in first-encounter order; only the
    # final masks-to-sets conversion ever looks at it again.
    index_of: dict = {}
    values: list = []

    def bit_of(value) -> int:
        position = index_of.get(value)
        if position is None:
            position = len(values)
            index_of[value] = position
            values.append(value)
        return 1 << position

    use_mask: dict[str, int] = {}
    def_mask: dict[str, int] = {}
    for label in label_list:
        use = 0
        define = 0
        for instruction in reversed(block_instructions(label)):
            for defined in instruction.defs():
                mask = bit_of(defined)
                use &= ~mask
                define |= mask
            for used in instruction.uses():
                if is_trackable(used):
                    use |= bit_of(used)
        use_mask[label] = use
        def_mask[label] = define

    live_in: dict[str, int] = {label: 0 for label in label_list}
    live_out: dict[str, int] = {label: 0 for label in label_list}
    stack = list(order)
    queued = set(order)
    visits = 0
    while stack:
        label = stack.pop()
        queued.discard(label)
        visits += 1
        out = 0
        for successor in succs[label]:
            out |= live_in[successor]
        new_in = use_mask[label] | (out & ~def_mask[label])
        live_out[label] = out
        if new_in != live_in[label]:
            live_in[label] = new_in
            for predecessor in preds[label]:
                if predecessor not in queued:
                    queued.add(predecessor)
                    stack.append(predecessor)

    facts = {}
    for label in label_list:
        facts[label] = BlockLiveness(
            live_in={values[i] for i in iter_bits(live_in[label])},
            live_out={values[i] for i in iter_bits(live_out[label])},
            use={values[i] for i in iter_bits(use_mask[label])},
            define={values[i] for i in iter_bits(def_mask[label])},
        )
    return LivenessResult(facts, visits)


class _ReturnProxy:
    """Wraps a Return terminator so pinned temps count as used by it."""

    def __init__(self, terminator, extra_uses: list):
        self._terminator = terminator
        self._extra = extra_uses

    def uses(self) -> list:
        return list(self._terminator.uses()) + self._extra

    def defs(self) -> list:
        return []


class _CallProxy:
    """Wraps a call so pinned temps count as both used and redefined.

    A promoted global lives in a register that the *callee* may read and
    write (that is the whole point of web promotion), so from the
    caller's perspective every non-builtin call both uses and clobbers
    the pinned temp.
    """

    def __init__(self, call, pinned: list):
        self._call = call
        self._pinned = pinned

    def uses(self) -> list:
        return list(self._call.uses()) + self._pinned

    def defs(self) -> list:
        return list(self._call.defs()) + self._pinned


def _is_user_call(instruction) -> bool:
    from repro.ir.instructions import Call, CallIndirect

    if isinstance(instruction, CallIndirect):
        return True
    return isinstance(instruction, Call) and not instruction.is_builtin


def compute_ir_liveness(function) -> LivenessResult:
    """Liveness of temps over an :class:`repro.ir.IRFunction`.

    Temps pinned to physical registers (promoted globals) are live at
    every return: the register's value is the global variable as far as
    callers are concerned.
    """
    from repro.ir.instructions import Return
    from repro.ir.values import Temp

    pinned = list(function.pinned_temps)

    def block_instructions(label: str) -> list:
        block = function.blocks[label]
        if pinned:
            instructions = [
                _CallProxy(instruction, pinned)
                if _is_user_call(instruction)
                else instruction
                for instruction in block.instructions
            ]
        else:
            instructions = list(block.instructions)
        if isinstance(block.terminator, Return) and pinned:
            instructions.append(_ReturnProxy(block.terminator, pinned))
        elif block.terminator is not None:
            instructions.append(block.terminator)
        return instructions

    return compute_liveness(
        function.blocks.keys(),
        lambda label: function.blocks[label].successors(),
        block_instructions,
        lambda value: isinstance(value, Temp),
    )
