"""Reusable program analyses: dominators, liveness, loops, frequencies."""

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.analysis.frequency import (
    FunctionUsage,
    analyze_function_usage,
    block_weight,
    estimate_callee_saves_need,
)
from repro.analysis.liveness import (
    LivenessResult,
    compute_ir_liveness,
    compute_liveness,
)
from repro.analysis.loops import (
    NaturalLoop,
    compute_cfg_dominators,
    find_natural_loops,
    loop_nesting_depths,
)

__all__ = [
    "DominatorTree",
    "FunctionUsage",
    "LivenessResult",
    "NaturalLoop",
    "analyze_function_usage",
    "block_weight",
    "compute_cfg_dominators",
    "compute_dominators",
    "compute_ir_liveness",
    "compute_liveness",
    "estimate_callee_saves_need",
    "find_natural_loops",
    "loop_nesting_depths",
]
