"""Static frequency estimation over IR.

The compiler first phase estimates (paper section 3 and 6):

* per-procedure global-variable reference frequencies,
* per-procedure call frequencies to each callee,
* the number of callee-saves registers the procedure will need.

Following the prototype described in section 6, "usage counts and call
frequencies were determined based on the location of each reference or
call in the control flow hierarchy": a reference at loop nesting depth
``d`` is weighted ``FREQUENCY_BASE ** d``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.liveness import compute_ir_liveness
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Call,
    CallIndirect,
    LoadAddr,
    LoadGlobal,
    StoreGlobal,
)
from repro.ir.values import Temp

FREQUENCY_BASE = 10
MAX_WEIGHTED_DEPTH = 6


def block_weight(loop_depth: int) -> int:
    """Static execution-frequency weight of a block at ``loop_depth``."""
    return FREQUENCY_BASE ** min(loop_depth, MAX_WEIGHTED_DEPTH)


@dataclass
class FunctionUsage:
    """Static usage facts for one procedure.

    Attributes:
        global_refs: qualified global name -> weighted reference count.
        global_stores: subset of the above that are writes.
        calls: callee qualified name -> weighted call count (direct calls).
        address_taken_functions: function names whose address this
            procedure computes (potential indirect-call targets).
        makes_indirect_calls: True if any indirect call site exists.
        callee_saves_needed: estimated callee-saves register demand.
    """

    global_refs: Counter = field(default_factory=Counter)
    global_stores: Counter = field(default_factory=Counter)
    calls: Counter = field(default_factory=Counter)
    address_taken_functions: set[str] = field(default_factory=set)
    makes_indirect_calls: bool = False
    indirect_call_freq: int = 0
    callee_saves_needed: int = 0
    caller_saves_needed: int = 0
    max_call_args: int = 0


def analyze_function_usage(function: IRFunction) -> FunctionUsage:
    """Collect weighted reference/call counts and register-need estimate."""
    usage = FunctionUsage()
    for block in function.blocks.values():
        weight = block_weight(block.loop_depth)
        for instruction in block.instructions:
            if isinstance(instruction, LoadGlobal):
                usage.global_refs[instruction.symbol] += weight
            elif isinstance(instruction, StoreGlobal):
                usage.global_refs[instruction.symbol] += weight
                usage.global_stores[instruction.symbol] += weight
            elif isinstance(instruction, Call):
                if not instruction.is_builtin:
                    usage.calls[instruction.callee] += weight
                    usage.max_call_args = max(
                        usage.max_call_args, len(instruction.args)
                    )
            elif isinstance(instruction, CallIndirect):
                usage.makes_indirect_calls = True
                usage.indirect_call_freq += weight
                usage.max_call_args = max(
                    usage.max_call_args, len(instruction.args)
                )
            elif isinstance(instruction, LoadAddr) and instruction.is_function:
                usage.address_taken_functions.add(instruction.symbol)
    usage.callee_saves_needed = estimate_callee_saves_need(function)
    usage.caller_saves_needed = estimate_caller_saves_need(function)
    return usage


def estimate_caller_saves_need(function: IRFunction) -> int:
    """Estimate how many caller-saves registers the procedure needs.

    Values *not* live across calls can use caller-saves registers; the
    demand is the maximum number of such values simultaneously live at
    any point.  Used by the caller-saves preallocation extension (paper
    section 7.6.2): the analyzer propagates each procedure's caller-saves
    usage bottom-up so callers can keep values in caller-saves registers
    across calls that do not touch them.
    """
    liveness = compute_ir_liveness(function)
    across = _temps_live_across_calls(function, liveness)
    peak = 0
    for block in function.blocks.values():
        live: set[Temp] = {
            t for t in liveness.live_out(block.label) if t not in across
        }
        peak = max(peak, len(live))
        instructions = list(block.instructions)
        if block.terminator is not None:
            instructions.append(block.terminator)
        for instruction in reversed(instructions):
            for defined in instruction.defs():
                live.discard(defined)
            for used in instruction.uses():
                if isinstance(used, Temp) and used not in across:
                    live.add(used)
            peak = max(peak, len(live))
    return peak


def _temps_live_across_calls(function: IRFunction, liveness) -> set:
    across: set[Temp] = set()
    for block in function.blocks.values():
        instructions = list(block.instructions)
        if block.terminator is not None:
            instructions.append(block.terminator)
        live: set[Temp] = set(liveness.live_out(block.label))
        for instruction in reversed(instructions):
            if isinstance(instruction, (Call, CallIndirect)) and not (
                isinstance(instruction, Call) and instruction.is_builtin
            ):
                across |= live - set(instruction.defs())
            for defined in instruction.defs():
                live.discard(defined)
            for used in instruction.uses():
                if isinstance(used, Temp):
                    live.add(used)
    return across


def estimate_callee_saves_need(function: IRFunction) -> int:
    """Estimate how many callee-saves registers the procedure needs.

    A temp that is live across some call must survive the call, so it
    wants a callee-saves register.  The estimate is the number of distinct
    temps live across any call site — the same quantity the paper's first
    phase records in the summary file for the spill-code-motion
    preallocation (section 4.2.4).
    """
    liveness = compute_ir_liveness(function)
    live_across_calls: set[Temp] = set()
    for block in function.blocks.values():
        instructions = list(block.instructions)
        if block.terminator is not None:
            instructions.append(block.terminator)
        live: set[Temp] = set(liveness.live_out(block.label))
        # Walk backward so "live after the call" is available at the call.
        for instruction in reversed(instructions):
            if isinstance(instruction, (Call, CallIndirect)):
                after = live - set(instruction.defs())
                live_across_calls |= after
            for defined in instruction.defs():
                live.discard(defined)
            for used in instruction.uses():
                if isinstance(used, Temp):
                    live.add(used)
    return len(live_across_calls)
