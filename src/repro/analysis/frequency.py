"""Static frequency estimation over IR.

The compiler first phase estimates (paper section 3 and 6):

* per-procedure global-variable reference frequencies,
* per-procedure call frequencies to each callee,
* the number of callee-saves registers the procedure will need.

Following the prototype described in section 6, "usage counts and call
frequencies were determined based on the location of each reference or
call in the control flow hierarchy": a reference at loop nesting depth
``d`` is weighted ``FREQUENCY_BASE ** d``.

The live-across-call walkers share one precomputed *function walk* — a
per-block tuple of ``(defs, temp uses, call flags)`` triples in reverse
program order — instead of rebuilding ``set(instruction.defs())`` and
``list(block.instructions)`` inside every inner loop, and one liveness
result instead of re-solving the fixpoint per estimate.  Under the
default ``packed`` dataflow mode (:mod:`repro.analysis.packed`) the
walks run on integer bitmasks over a dense temp index.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.liveness import LivenessResult, compute_ir_liveness
from repro.analysis.packed import resolve_dataflow
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Call,
    CallIndirect,
    LoadAddr,
    LoadGlobal,
    StoreGlobal,
)
from repro.ir.values import Temp

FREQUENCY_BASE = 10
MAX_WEIGHTED_DEPTH = 6


def block_weight(loop_depth: int) -> int:
    """Static execution-frequency weight of a block at ``loop_depth``."""
    return FREQUENCY_BASE ** min(loop_depth, MAX_WEIGHTED_DEPTH)


@dataclass
class FunctionUsage:
    """Static usage facts for one procedure.

    Attributes:
        global_refs: qualified global name -> weighted reference count.
        global_stores: subset of the above that are writes.
        calls: callee qualified name -> weighted call count (direct calls).
        address_taken_functions: function names whose address this
            procedure computes (potential indirect-call targets).
        makes_indirect_calls: True if any indirect call site exists.
        callee_saves_needed: estimated callee-saves register demand.
    """

    global_refs: Counter = field(default_factory=Counter)
    global_stores: Counter = field(default_factory=Counter)
    calls: Counter = field(default_factory=Counter)
    address_taken_functions: set[str] = field(default_factory=set)
    makes_indirect_calls: bool = False
    indirect_call_freq: int = 0
    callee_saves_needed: int = 0
    caller_saves_needed: int = 0
    max_call_args: int = 0


def _function_walk(function: IRFunction) -> list:
    """Hoisted per-block reverse walks for the live-across-call passes.

    Returns ``[(label, steps), ...]`` where ``steps`` is a tuple of
    ``(defs, temp_uses, is_call, is_user_call)`` records — one per
    instruction *including* the terminator, in reverse program order —
    with ``defs``/``temp_uses`` as tuples.  Built once per function;
    the old code re-allocated ``set(instruction.defs())`` and the
    instruction list inside every inner loop of every estimate.
    """
    walk = []
    for block in function.blocks.values():
        instructions = list(block.instructions)
        if block.terminator is not None:
            instructions.append(block.terminator)
        steps = []
        for instruction in reversed(instructions):
            is_call = isinstance(instruction, (Call, CallIndirect))
            is_user_call = is_call and not (
                isinstance(instruction, Call) and instruction.is_builtin
            )
            steps.append((
                tuple(instruction.defs()),
                tuple(
                    used for used in instruction.uses()
                    if isinstance(used, Temp)
                ),
                is_call,
                is_user_call,
            ))
        walk.append((block.label, tuple(steps)))
    return walk


def analyze_function_usage(function: IRFunction) -> FunctionUsage:
    """Collect weighted reference/call counts and register-need estimate."""
    usage = FunctionUsage()
    for block in function.blocks.values():
        weight = block_weight(block.loop_depth)
        for instruction in block.instructions:
            if isinstance(instruction, LoadGlobal):
                usage.global_refs[instruction.symbol] += weight
            elif isinstance(instruction, StoreGlobal):
                usage.global_refs[instruction.symbol] += weight
                usage.global_stores[instruction.symbol] += weight
            elif isinstance(instruction, Call):
                if not instruction.is_builtin:
                    usage.calls[instruction.callee] += weight
                    usage.max_call_args = max(
                        usage.max_call_args, len(instruction.args)
                    )
            elif isinstance(instruction, CallIndirect):
                usage.makes_indirect_calls = True
                usage.indirect_call_freq += weight
                usage.max_call_args = max(
                    usage.max_call_args, len(instruction.args)
                )
            elif isinstance(instruction, LoadAddr) and instruction.is_function:
                usage.address_taken_functions.add(instruction.symbol)
    # One liveness fixpoint and one instruction walk feed both register
    # estimates (each used to re-solve liveness privately).
    liveness = compute_ir_liveness(function)
    walk = _function_walk(function)
    usage.callee_saves_needed = estimate_callee_saves_need(
        function, liveness, walk
    )
    usage.caller_saves_needed = estimate_caller_saves_need(
        function, liveness, walk
    )
    return usage


def estimate_caller_saves_need(
    function: IRFunction,
    liveness: LivenessResult | None = None,
    walk: list | None = None,
) -> int:
    """Estimate how many caller-saves registers the procedure needs.

    Values *not* live across calls can use caller-saves registers; the
    demand is the maximum number of such values simultaneously live at
    any point.  Used by the caller-saves preallocation extension (paper
    section 7.6.2): the analyzer propagates each procedure's caller-saves
    usage bottom-up so callers can keep values in caller-saves registers
    across calls that do not touch them.
    """
    if liveness is None:
        liveness = compute_ir_liveness(function)
    if walk is None:
        walk = _function_walk(function)
    if resolve_dataflow() == "packed":
        masks = _PackedWalk(liveness, walk)
        across = masks.across_user_calls()
        peak = 0
        for label, steps in masks.steps:
            live = masks.live_out[label] & ~across
            peak = max(peak, live.bit_count())
            for defs, uses, _is_call, _is_user_call in steps:
                live &= ~defs
                live |= uses & ~across
                count = live.bit_count()
                if count > peak:
                    peak = count
        return peak
    across = _temps_live_across_calls(function, liveness, walk)
    peak = 0
    for label, steps in walk:
        live: set[Temp] = {
            t for t in liveness.live_out(label) if t not in across
        }
        peak = max(peak, len(live))
        for defs, uses, _is_call, _is_user_call in steps:
            for defined in defs:
                live.discard(defined)
            for used in uses:
                if used not in across:
                    live.add(used)
            peak = max(peak, len(live))
    return peak


def _temps_live_across_calls(
    function: IRFunction, liveness, walk: list | None = None
) -> set:
    if walk is None:
        walk = _function_walk(function)
    across: set[Temp] = set()
    for label, steps in walk:
        live: set[Temp] = set(liveness.live_out(label))
        for defs, uses, _is_call, is_user_call in steps:
            if is_user_call:
                across |= live.difference(defs)
            for defined in defs:
                live.discard(defined)
            live.update(uses)
    return across


def estimate_callee_saves_need(
    function: IRFunction,
    liveness: LivenessResult | None = None,
    walk: list | None = None,
) -> int:
    """Estimate how many callee-saves registers the procedure needs.

    A temp that is live across some call must survive the call, so it
    wants a callee-saves register.  The estimate is the number of distinct
    temps live across any call site — the same quantity the paper's first
    phase records in the summary file for the spill-code-motion
    preallocation (section 4.2.4).
    """
    if liveness is None:
        liveness = compute_ir_liveness(function)
    if walk is None:
        walk = _function_walk(function)
    if resolve_dataflow() == "packed":
        masks = _PackedWalk(liveness, walk)
        across = 0
        for label, steps in masks.steps:
            live = masks.live_out[label]
            # Walk backward so "live after the call" is available at the
            # call; every call counts here, builtins included.
            for defs, uses, is_call, _is_user_call in steps:
                if is_call:
                    across |= live & ~defs
                live &= ~defs
                live |= uses
        return across.bit_count()
    live_across_calls: set[Temp] = set()
    for label, steps in walk:
        live: set[Temp] = set(liveness.live_out(label))
        # Walk backward so "live after the call" is available at the call.
        for defs, uses, is_call, _is_user_call in steps:
            if is_call:
                live_across_calls |= live.difference(defs)
            for defined in defs:
                live.discard(defined)
            live.update(uses)
    return len(live_across_calls)


class _PackedWalk:
    """Bitmask form of a function walk + its block ``live_out`` facts.

    Temps get a dense per-function index; each walk step's def/use
    tuples and each block's ``live_out`` set become single integers, so
    the estimate loops above run on ``&``/``|`` instead of per-element
    set mutation.
    """

    __slots__ = ("steps", "live_out", "_index")

    def __init__(self, liveness, walk: list):
        self._index: dict = {}
        index = self._index

        def mask_of(items) -> int:
            mask = 0
            for item in items:
                position = index.get(item)
                if position is None:
                    position = len(index)
                    index[item] = position
                mask |= 1 << position
            return mask

        self.steps = [
            (
                label,
                tuple(
                    (mask_of(defs), mask_of(uses), is_call, is_user_call)
                    for defs, uses, is_call, is_user_call in steps
                ),
            )
            for label, steps in walk
        ]
        self.live_out = {
            label: mask_of(liveness.live_out(label))
            for label, _steps in self.steps
        }

    def across_user_calls(self) -> int:
        """Mask of temps live across some non-builtin call."""
        across = 0
        for label, steps in self.steps:
            live = self.live_out[label]
            for defs, uses, _is_call, is_user_call in steps:
                if is_user_call:
                    across |= live & ~defs
                live &= ~defs
                live |= uses
        return across
