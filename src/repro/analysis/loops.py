"""Natural-loop detection on IR control-flow graphs.

The IR builder already records *syntactic* loop depth on each block (the
front end only produces structured control flow), and the frequency
heuristics use that.  This module recovers loops from the graph itself —
back edges with respect to the dominator tree — and is used by tests to
cross-check the syntactic depths and by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.ir.function import IRFunction


@dataclass
class NaturalLoop:
    """One natural loop: a header and the set of member block labels."""

    header: str
    body: set[str] = field(default_factory=set)

    def __contains__(self, label: str) -> bool:
        return label in self.body


def compute_cfg_dominators(function: IRFunction) -> DominatorTree:
    """Dominator tree of a function's CFG."""
    return compute_dominators(
        function.blocks.keys(),
        [function.entry_label],
        lambda label: function.blocks[label].successors(),
    )


def find_natural_loops(function: IRFunction) -> list[NaturalLoop]:
    """All natural loops, one per back edge (merged per header)."""
    dominators = compute_cfg_dominators(function)
    predecessors = function.predecessors()
    loops: dict[str, NaturalLoop] = {}
    for block in function.blocks.values():
        for successor in block.successors():
            if dominators.dominates(successor, block.label):
                loop = loops.setdefault(successor, NaturalLoop(successor))
                _collect_loop_body(successor, block.label, predecessors, loop)
    return list(loops.values())


def _collect_loop_body(
    header: str,
    latch: str,
    predecessors: dict[str, list[str]],
    loop: NaturalLoop,
) -> None:
    loop.body.add(header)
    worklist = [latch]
    while worklist:
        label = worklist.pop()
        if label in loop.body:
            continue
        loop.body.add(label)
        worklist.extend(predecessors[label])


def loop_nesting_depths(function: IRFunction) -> dict[str, int]:
    """Graph-derived loop nesting depth for every block label."""
    depths = {label: 0 for label in function.blocks}
    for loop in find_natural_loops(function):
        for label in loop.body:
            depths[label] += 1
    return depths
