"""Dense indices and integer-bitmask kernels for the dataflow analyses.

Python ``set``-per-node fixpoints dominate the analyzer's profile on
large programs: every pass re-allocates result sets and pays a hashed
membership probe per element.  Packing each family of facts into a
*dense index* (a stable item -> bit position map) turns the same
transfer functions into single big-integer operations — a union over a
thousand globals is one ``|`` on a 1000-bit ``int`` instead of a
thousand hash probes — the fixed-width-bit-vector representation the
register-allocation literature standardizes on for exactly this reason.

This module holds the shared machinery:

* :func:`resolve_dataflow` — the ``REPRO_DATAFLOW`` knob selecting the
  ``packed`` kernels (default) or the original set-based ``reference``
  implementations, mirroring ``REPRO_SIM`` / ``REPRO_ALLOCATOR``;
* :class:`DenseIndex` — stable item <-> bit position maps;
* :class:`PackedGraph` — per-:class:`~repro.callgraph.graph.CallGraph`
  dense node numbering plus successor/predecessor adjacency bitmasks,
  memoized on the graph instance;
* bit iteration / conversion helpers shared by every packed kernel.

Both modes must produce *identical* results — the packed kernels mirror
the reference control flow op for op (including web-id consumption), and
``tests/analysis/test_dataflow_packed.py`` pins database byte-identity
across the full workload x configuration matrix.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

#: Dataflow kernel implementations selectable via ``REPRO_DATAFLOW``.
DATAFLOW_MODES = ("packed", "reference")
DEFAULT_DATAFLOW = "packed"


def resolve_dataflow(mode: str | None = None) -> str:
    """Validate an explicit mode or fall back to ``REPRO_DATAFLOW``.

    ``None`` consults the ``REPRO_DATAFLOW`` environment variable and
    then the module default, so one environment knob steers every
    dataflow kernel in the process (liveness, reference sets, webs,
    interference, register sets).
    """
    name = mode or os.environ.get("REPRO_DATAFLOW") or DEFAULT_DATAFLOW
    name = name.strip().lower()
    if name not in DATAFLOW_MODES:
        raise ValueError(
            f"unknown dataflow mode {name!r}; expected one of "
            f"{', '.join(DATAFLOW_MODES)}"
        )
    return name


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        yield (mask & -mask).bit_length() - 1
        mask &= mask - 1


#: byte value -> tuple of its set bit offsets (decode table for
#: :meth:`DenseIndex.set_of`).
_BYTE_BITS = tuple(
    tuple(b for b in range(8) if value >> b & 1) for value in range(256)
)


class DenseIndex:
    """A stable bidirectional item <-> bit position map.

    Bit order follows the order items were supplied in, so building from
    a sorted iterable makes ascending-bit iteration equal to sorted-item
    iteration — the property the packed web kernels rely on to replicate
    the reference implementation's ``sorted(...)`` traversals.
    """

    __slots__ = ("items", "index_of")

    def __init__(self, items: Iterable):
        self.items = tuple(items)
        self.index_of = {item: i for i, item in enumerate(self.items)}

    def __len__(self) -> int:
        return len(self.items)

    def mask_of(self, items: Iterable) -> int:
        """Bitmask with the bit of every item in ``items`` set."""
        mask = 0
        index_of = self.index_of
        for item in items:
            mask |= 1 << index_of[item]
        return mask

    def set_of(self, mask: int) -> set:
        """The items of ``mask`` as a plain set."""
        result = set()
        if not mask:
            return result
        # Shift the mask down to its lowest set bit first: typical masks
        # are sparse with clustered bits high up, and big-int arithmetic
        # costs O(total width), not O(span).  Dense masks (web node sets
        # hugging one module's bit range) then decode bytewise — one
        # C-level ``to_bytes`` plus a table lookup per non-zero byte —
        # while sparse-but-wide masks keep the per-bit loop, which never
        # touches the zero gaps.
        items = self.items
        base = ((mask & -mask).bit_length() - 1) & ~63
        mask >>= base
        if mask.bit_count() << 3 >= mask.bit_length():
            add = result.add
            byte_bits = _BYTE_BITS
            offset = base
            for byte in mask.to_bytes(
                (mask.bit_length() + 7) >> 3, "little"
            ):
                if byte:
                    for b in byte_bits[byte]:
                        add(items[offset + b])
                offset += 8
        else:
            while mask:
                result.add(items[base + (mask & -mask).bit_length() - 1])
                mask &= mask - 1
        return result

    def frozenset_of(self, mask: int) -> frozenset:
        return frozenset(self.set_of(mask))


class PackedGraph:
    """Dense node numbering + adjacency bitmasks for one call graph.

    Node bit order is ``sorted(graph.nodes)``, matching the reference
    kernels' ``for name in sorted(graph.nodes)`` sweeps.  The instance
    is memoized on the graph object (topology is immutable once built;
    only node *weights* change afterwards, which nothing here reads).
    """

    __slots__ = ("index", "names", "succ", "pred", "_scc_masks")

    def __init__(self, graph):
        self.index = DenseIndex(sorted(graph.nodes))
        self.names = self.index.items
        index_of = self.index.index_of
        self.succ = [0] * len(self.names)
        self.pred = [0] * len(self.names)
        for name, node in graph.nodes.items():
            i = index_of[name]
            succ_mask = 0
            for callee in node.successors:
                succ_mask |= 1 << index_of[callee]
            self.succ[i] = succ_mask
            pred_mask = 0
            for caller in node.predecessors:
                pred_mask |= 1 << index_of[caller]
            self.pred[i] = pred_mask
        self._scc_masks = None

    @classmethod
    def of(cls, graph) -> "PackedGraph":
        cached = getattr(graph, "_packed_graph", None)
        if cached is None:
            cached = cls(graph)
            graph._packed_graph = cached
        return cached

    def scc_mask_of(self, graph) -> list:
        """Per-node bitmask of its strongly connected component."""
        if self._scc_masks is None:
            masks = [0] * len(self.names)
            index_of = self.index.index_of
            for component in graph.strongly_connected_components():
                mask = 0
                for name in component:
                    mask |= 1 << index_of[name]
                for name in component:
                    masks[index_of[name]] = mask
            self._scc_masks = masks
        return self._scc_masks


def packed_variable_masks(graph, sets) -> tuple:
    """Variable-major node masks of one :class:`ReferenceSets`.

    Returns ``(packed_graph, lref, pref, cref)`` where each of the three
    dicts maps a variable name to the bitmask of nodes carrying it in
    the corresponding reference set (absent variable -> ``0`` via
    ``dict.get``).  Memoized on the ``sets`` instance: web construction
    queries these once per variable.
    """
    cached = getattr(sets, "_packed_variable_masks", None)
    packed = PackedGraph.of(graph)
    if cached is not None and cached[0] is packed:
        return cached
    lref: dict[str, int] = {}
    pref: dict[str, int] = {}
    cref: dict[str, int] = {}
    for accumulator, by_node in (
        (lref, sets.l_ref), (pref, sets.p_ref), (cref, sets.c_ref)
    ):
        for i, name in enumerate(packed.names):
            bit = 1 << i
            for variable in by_node.get(name, ()):
                accumulator[variable] = accumulator.get(variable, 0) | bit
    cached = (packed, lref, pref, cref)
    sets._packed_variable_masks = cached
    return cached
