"""Generic dominator computation (Cooper-Harvey-Kennedy).

Used in two places:

* on function CFGs, for natural-loop detection;
* on the program *call graph*, where the paper's cluster definition
  (section 4.2.1) requires "node D dominates node N iff every path from
  each start node to N includes D".

The call-graph case can have multiple start nodes, which we handle by
adding a virtual root with edges to every start node.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Optional, TypeVar

Node = TypeVar("Node", bound=Hashable)

_VIRTUAL_ROOT = object()


class DominatorTree:
    """Immediate-dominator mapping over a rooted graph.

    ``idom[n]`` is the immediate dominator of ``n``; the (possibly
    virtual) root has no entry.  Nodes unreachable from the roots do not
    appear at all.
    """

    def __init__(self, idom: dict, roots: set):
        self._idom = idom
        self._roots = roots

    @property
    def reachable_nodes(self) -> set:
        return set(self._idom) | self._roots

    def immediate_dominator(self, node):
        """The unique immediate dominator, or ``None`` for roots/virtual."""
        parent = self._idom.get(node)
        if parent is _VIRTUAL_ROOT:
            return None
        return parent

    def dominates(self, a, b) -> bool:
        """True if ``a`` dominates ``b`` (reflexively)."""
        current = b
        while current is not None and current is not _VIRTUAL_ROOT:
            if current == a:
                return True
            current = self._idom.get(current)
        return False

    def strictly_dominates(self, a, b) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, node) -> list:
        """All dominators of ``node``, nearest first (including itself)."""
        chain = []
        current = node
        while current is not None and current is not _VIRTUAL_ROOT:
            chain.append(current)
            current = self._idom.get(current)
        return chain


def compute_dominators(
    nodes: Iterable[Node],
    roots: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> DominatorTree:
    """Compute the dominator tree of a graph with one or more roots."""
    root_set = set(roots)
    all_nodes = list(nodes)

    def virtual_successors(node):
        if node is _VIRTUAL_ROOT:
            return root_set
        return successors(node)

    # Reverse postorder from the virtual root.
    postorder: list = []
    visited: set = set()

    def dfs(start) -> None:
        stack = [(start, iter(virtual_successors(start)))]
        visited.add(start)
        while stack:
            node, succ_iter = stack[-1]
            advanced = False
            for successor in succ_iter:
                if successor not in visited:
                    visited.add(successor)
                    stack.append(
                        (successor, iter(virtual_successors(successor)))
                    )
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    dfs(_VIRTUAL_ROOT)
    rpo = list(reversed(postorder))
    rpo_index = {node: index for index, node in enumerate(rpo)}

    predecessors: dict = {node: [] for node in rpo}
    for node in rpo:
        for successor in virtual_successors(node):
            if successor in predecessors:
                predecessors[successor].append(node)

    idom: dict = {_VIRTUAL_ROOT: _VIRTUAL_ROOT}

    def intersect(a, b):
        while a is not b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node is _VIRTUAL_ROOT:
                continue
            candidates = [p for p in predecessors[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) is not new_idom:
                idom[node] = new_idom
                changed = True

    del idom[_VIRTUAL_ROOT]
    # Nodes whose idom is the virtual root are only dominated by themselves.
    result = {
        node: parent for node, parent in idom.items()
    }
    reachable_roots = {n for n in root_set if n in visited}
    _ = all_nodes  # documented parameter; reachability comes from the DFS
    return DominatorTree(result, reachable_roots)
