"""Parallel, incremental compilation scheduler.

The paper splits compilation at module boundaries on purpose: phase 1
and phase 2 are per-module jobs that communicate only through summary
files and the program database (sections 2 and 7.4), so nothing in the
design forces either serial execution or whole-program recompilation.
:class:`CompilationScheduler` exploits both freedoms:

* **Parallelism** — phase-1 jobs are independent by construction and
  run across a :class:`~concurrent.futures.ProcessPoolExecutor`; once
  the analyzer has produced the database, phase-2 jobs are equally
  independent and fan out the same way.  Workers are pure functions of
  picklable inputs, so parallel results are bit-identical to serial
  ones (asserted by ``tests/driver/test_determinism.py``).
* **Incrementality** — a content-addressed on-disk cache
  (:mod:`repro.driver.cache`) keyed on exactly the inputs each phase
  depends on: source text + opt level for phase 1, (phase-1
  fingerprint, per-module directive digest, opt level) for phase 2.
  Editing one module re-runs phase 1 for that module alone; changing
  :class:`~repro.analyzer.options.AnalyzerOptions` re-runs the
  analyzer and then only the phase-2 jobs of modules whose directives
  actually changed.

Every stage is instrumented with wall-clock and cache counters; one
compilation's share is surfaced on
:attr:`repro.driver.pipeline.CompilationResult.metrics`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from copy import deepcopy
from dataclasses import dataclass, field

from repro.analyzer.database import ProgramDatabase
from repro.analyzer.driver import analyze_program
from repro.backend.allocators import resolve_allocator
from repro.backend.phase2 import (
    compile_module_phase2,
    module_directive_names,
)
from repro.driver.cache import ArtifactCache, phase2_key
from repro.frontend.phase1 import (
    Phase1Result,
    compile_module_phase1,
    phase1_fingerprint,
)
from repro.linker.link import Executable, link
from repro.obs.tracer import NULL_TRACER, Tracer, activate
from repro.verify.auditor import AuditError, audit_executable

STAGES = ("phase1", "analyze", "phase2", "link", "verify")


def _phase1_task(item) -> Phase1Result:
    """Process-pool entry point for one module's first phase."""
    name, text, opt_level = item
    return compile_module_phase1(text, name, opt_level)


def _phase2_task(item):
    """Process/inline entry point for one module's second phase.

    Phase 2 rewrites the IR in place, and one phase-1 result feeds many
    configurations, so the task always works on a private deep copy —
    whether it runs in a worker (where the pickle round-trip already
    isolated it) or inline in the parent.
    """
    ir_module, database, opt_level, allocator = item
    return compile_module_phase2(
        deepcopy(ir_module), database, opt_level, allocator
    )


@dataclass
class MetricsSnapshot:
    """Point-in-time (or differenced) scheduler instrumentation."""

    jobs: int = 1
    stage_seconds: dict = field(default_factory=dict)
    stage_tasks: dict = field(default_factory=dict)
    cache_hits: dict = field(default_factory=dict)
    cache_misses: dict = field(default_factory=dict)
    cache_bad_entries: dict = field(default_factory=dict)
    cache_evictions: dict = field(default_factory=dict)
    #: Analyze-stage incremental counters (REPRO_INCREMENTAL runs):
    #: runs, incremental, full_fallbacks, webs/clusters reused and
    #: recomputed, procedures patched and retained.
    analyze: dict = field(default_factory=dict)
    #: Most recent allocation-audit summary (REPRO_VERIFY runs only);
    #: not a counter — ``minus`` carries the newer snapshot's value.
    audit: dict = field(default_factory=dict)

    def minus(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The activity between ``earlier`` and this snapshot.

        Two explicit rules:

        * **counter fields** (``stage_seconds``, ``stage_tasks``, the
          ``cache_*`` families, and ``analyze``) hold flat numeric
          values and are differenced key-by-key, dropping zero deltas;
        * **``audit``** is a point-in-time snapshot with nested
          non-numeric values (``violations_by_check`` dicts, violation
          strings) — differencing it is meaningless, so the newer
          snapshot's value is *carried*, deep-copied so the result
          never shares mutable structure with either operand.
        """

        def diff(now: dict, then: dict) -> dict:
            return {
                key: value - then.get(key, 0)
                for key, value in now.items()
                if value - then.get(key, 0)
            }

        return MetricsSnapshot(
            jobs=self.jobs,
            stage_seconds=diff(self.stage_seconds, earlier.stage_seconds),
            stage_tasks=diff(self.stage_tasks, earlier.stage_tasks),
            cache_hits=diff(self.cache_hits, earlier.cache_hits),
            cache_misses=diff(self.cache_misses, earlier.cache_misses),
            cache_bad_entries=diff(
                self.cache_bad_entries, earlier.cache_bad_entries
            ),
            cache_evictions=diff(
                self.cache_evictions, earlier.cache_evictions
            ),
            analyze=diff(self.analyze, earlier.analyze),
            audit=deepcopy(self.audit),
        )

    def to_json_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "stage_seconds": dict(self.stage_seconds),
            "stage_tasks": dict(self.stage_tasks),
            "cache_hits": dict(self.cache_hits),
            "cache_misses": dict(self.cache_misses),
            "cache_bad_entries": dict(self.cache_bad_entries),
            "cache_evictions": dict(self.cache_evictions),
            "analyze": dict(self.analyze),
            "audit": deepcopy(self.audit),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "MetricsSnapshot":
        """Inverse of :meth:`to_json_dict` (field-exact round-trip)."""
        return cls(
            jobs=payload.get("jobs", 1),
            stage_seconds=dict(payload.get("stage_seconds", {})),
            stage_tasks=dict(payload.get("stage_tasks", {})),
            cache_hits=dict(payload.get("cache_hits", {})),
            cache_misses=dict(payload.get("cache_misses", {})),
            cache_bad_entries=dict(payload.get("cache_bad_entries", {})),
            cache_evictions=dict(payload.get("cache_evictions", {})),
            analyze=dict(payload.get("analyze", {})),
            audit=deepcopy(payload.get("audit", {})),
        )


def _normalize_sources(sources) -> list:
    if isinstance(sources, dict):
        return sorted(sources.items())
    return list(sources)


class CompilationScheduler:
    """Runs the two compiler phases per-module, in parallel, with an
    artifact cache.

    Args:
        jobs: Worker-process count.  ``1`` (the default) runs every job
            inline — bit-identical behavior to the historical serial
            driver; ``None`` means one worker per CPU.
        cache_dir: Root of the artifact cache, or ``None`` to disable
            caching entirely.
        cache: An existing :class:`~repro.driver.cache.ArtifactCache`
            to compile against, shared with other schedulers — the
            compile service hands every session's scheduler one sharded
            cache so concurrent sessions dedupe phase-1/phase-2 work
            against each other.  Mutually exclusive with ``cache_dir``;
            the cache (and its statistics) stays caller-owned.
        verify: Run the post-link allocation auditor
            (:mod:`repro.verify.auditor`) on every linked executable and
            raise :class:`~repro.verify.auditor.AuditError` on any
            directive violation.  ``None`` (the default) reads the
            ``REPRO_VERIFY`` environment variable ("1" enables).
        incremental: Route the analyze stage through an
            :class:`~repro.incremental.engine.IncrementalAnalyzer`, so
            repeated compilations of an edited program re-analyze only
            the dirty region and patch the retained database in place.
            ``None`` (the default) reads the ``REPRO_INCREMENTAL``
            environment variable ("1" enables).
        trace: Observability tracing (:mod:`repro.obs.tracer`).  A path
            writes a deterministic JSONL event stream there; ``True``
            collects records in memory on ``scheduler.tracer.records``;
            an existing :class:`~repro.obs.tracer.Tracer` is used as-is
            (and stays caller-owned).  ``None`` (the default) reads the
            ``REPRO_TRACE`` environment variable (a path enables).
            Every event is emitted from this parent process — worker
            processes compute, the parent narrates — so serial and
            parallel runs produce identical canonicalized streams.
        allocator: Default register-allocation strategy for phase 2
            (:mod:`repro.backend.allocators`: ``paper``, ``linearscan``,
            ``spill-everywhere``).  ``None`` (the default) defers to the
            ``REPRO_ALLOCATOR`` environment variable and then the
            ``paper`` strategy; individual ``compile_*`` calls may
            override per compilation.  The strategy is part of each
            phase-2 cache key, so strategies never share object modules.

    The worker pool is created lazily on the first parallel stage and
    reused across compilations (benchmark sessions amortize startup
    over the whole Table 3/4 matrix).  Use as a context manager or
    call :meth:`close` to reclaim the pool.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache_dir=None,
        verify: bool | None = None,
        incremental: bool | None = None,
        trace=None,
        allocator: str | None = None,
        cache: ArtifactCache | None = None,
    ):
        self.allocator = allocator
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        if trace is None:
            trace = os.environ.get("REPRO_TRACE") or None
        self._owns_tracer = False
        if trace is None:
            self.tracer = NULL_TRACER
        elif trace is True:
            self.tracer = Tracer()
            self._owns_tracer = True
        elif isinstance(trace, (str, os.PathLike)):
            self.tracer = Tracer(trace)
            self._owns_tracer = True
        else:
            self.tracer = trace
        if cache is not None and cache_dir is not None:
            raise ValueError("pass cache_dir or cache, not both")
        if cache is not None:
            self.cache = cache
        else:
            self.cache = (
                ArtifactCache(cache_dir) if cache_dir is not None else None
            )
        if verify is None:
            verify = os.environ.get("REPRO_VERIFY", "") not in ("", "0")
        self.verify = verify
        if incremental is None:
            incremental = os.environ.get(
                "REPRO_INCREMENTAL", ""
            ) not in ("", "0")
        self.incremental_analyzer = None
        if incremental:
            from repro.incremental import IncrementalAnalyzer

            self.incremental_analyzer = IncrementalAnalyzer()
        self.last_invalidation_report = None
        self.last_audit_report = None
        self._last_audit_summary: dict = {}
        self._executor = None
        self._stage_seconds: dict = {}
        self._stage_tasks: dict = {}
        self._analyze_counters: dict = {}

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        if self._owns_tracer:
            # Records stay readable in memory; only the file is closed.
            self.tracer.close()

    def __enter__(self) -> "CompilationScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _get_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            mp_context = None
            if "fork" in multiprocessing.get_all_start_methods():
                # Fork workers inherit the parent's str-hash seed, so
                # even hash-order-sensitive code would stay consistent
                # with the parent process within one session.
                mp_context = multiprocessing.get_context("fork")
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=mp_context
            )
        return self._executor

    # -- instrumentation --------------------------------------------------

    @contextmanager
    def _timed(self, stage: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stage_seconds[stage] = (
                self._stage_seconds.get(stage, 0.0) + elapsed
            )

    def _count_tasks(self, stage: str, count: int) -> None:
        self._stage_tasks[stage] = self._stage_tasks.get(stage, 0) + count

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Cumulative instrumentation since construction (or reset)."""
        cache_stats = (
            self.cache.stats.snapshot()
            if self.cache is not None
            else {
                "hits": {},
                "misses": {},
                "bad_entries": {},
                "evictions": {},
            }
        )
        return MetricsSnapshot(
            jobs=self.jobs,
            stage_seconds=dict(self._stage_seconds),
            stage_tasks=dict(self._stage_tasks),
            cache_hits=cache_stats["hits"],
            cache_misses=cache_stats["misses"],
            cache_bad_entries=cache_stats["bad_entries"],
            cache_evictions=cache_stats["evictions"],
            analyze=dict(self._analyze_counters),
            audit=dict(self._last_audit_summary),
        )

    def reset_metrics(self) -> None:
        self._stage_seconds.clear()
        self._stage_tasks.clear()
        self._analyze_counters.clear()
        if self.cache is not None:
            self.cache.stats.clear()

    # -- execution core ---------------------------------------------------

    def _run_tasks(self, task_fn, items: list) -> list:
        """Run ``task_fn`` over ``items``, in order, possibly in
        parallel.  A broken pool (resource limits, killed workers)
        degrades to inline execution rather than failing the build."""
        if self.jobs > 1 and len(items) > 1:
            try:
                return list(self._get_executor().map(task_fn, items))
            except BrokenProcessPool:
                self._executor = None
        return [task_fn(item) for item in items]

    def _run_labeled_tasks(
        self, stage: str, task_fn, items: list, labels: list
    ) -> list:
        """:meth:`_run_tasks` plus one ``module`` span per item.

        The span carries the stage and module name so flamegraph
        folding can attribute phase time per module.  Canonicalized
        streams must stay identical between serial and parallel runs,
        so both paths emit the same begin/end pairs in item order; only
        the *timing* differs — inline execution runs each task inside
        its span (real per-module seconds), while the pool path
        computes first and then emits empty spans (~0 seconds each,
        the fan-out wall-clock stays on the enclosing stage span).
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._run_tasks(task_fn, items)
        if self.jobs > 1 and len(items) > 1:
            try:
                computed = list(self._get_executor().map(task_fn, items))
            except BrokenProcessPool:
                self._executor = None
            else:
                for label in labels:
                    with tracer.span("module", stage=stage,
                                     module=label):
                        pass
                return computed
        results: list = []
        for item, label in zip(items, labels):
            with tracer.span("module", stage=stage, module=label):
                results.append(task_fn(item))
        return results

    # -- pipeline stages --------------------------------------------------

    def run_phase1(self, sources, opt_level: int = 2) -> list:
        """Compiler first phase over every module (cached, parallel)."""
        modules = _normalize_sources(sources)
        tracer = self.tracer
        with self._timed("phase1"), tracer.span(
            "phase1", modules=len(modules)
        ):
            results: list = [None] * len(modules)
            pending: list = []  # (index, task item, cache key)
            for index, (name, text) in enumerate(modules):
                key = phase1_fingerprint(text, name, opt_level)
                if self.cache is not None:
                    cached = self.cache.load("phase1", key)
                    if isinstance(cached, Phase1Result):
                        results[index] = cached
                        continue
                pending.append((index, (name, text, opt_level), key))
            self._count_tasks("phase1", len(pending))
            computed = self._run_labeled_tasks(
                "phase1",
                _phase1_task,
                [item for _, item, _ in pending],
                [item[0] for _, item, _ in pending],
            )
            for (index, _item, key), result in zip(pending, computed):
                results[index] = result
                if self.cache is not None:
                    self.cache.store("phase1", key, result)
            if tracer.enabled:
                # Narrated here, in module order, from the parent —
                # worker scheduling cannot reorder the stream.
                recompiled = {index for index, _item, _key in pending}
                for index, (name, _text) in enumerate(modules):
                    tracer.event(
                        "module-phase1",
                        module=name,
                        cached=index not in recompiled,
                        fingerprint=results[index].fingerprint,
                        functions=sorted(
                            p.name
                            for p in results[index].summary.procedures
                        ),
                    )
        return results

    def analyze(self, summaries: list, options) -> ProgramDatabase:
        """The program analyzer.

        Without ``incremental`` the stage re-runs from scratch (it is
        whole-program by nature).  With it, the engine diffs the
        summaries against the previous epoch, re-analyzes only the
        dirty region, and patches the retained database in place; the
        resulting :class:`~repro.incremental.engine.InvalidationReport`
        lands on :attr:`last_invalidation_report` and its counters ride
        the next metrics snapshot.
        """
        tracer = self.tracer
        with self._timed("analyze"), tracer.span("analyze"), \
                activate(tracer):
            self._count_tasks("analyze", 1)
            if self.incremental_analyzer is None:
                return analyze_program(summaries, options)
            database, report = self.incremental_analyzer.update(
                summaries, options
            )
            self.last_invalidation_report = report
            if tracer.enabled:
                tracer.event(
                    "invalidation",
                    mode=report.mode,
                    reason=report.reason,
                    webs_reused=report.webs_reused,
                    webs_recomputed=report.webs_recomputed,
                    clusters_reused=report.clusters_reused,
                    clusters_recomputed=report.clusters_recomputed,
                )
            counters = self._analyze_counters

            def bump(name: str, amount: int = 1) -> None:
                counters[name] = counters.get(name, 0) + amount

            bump("runs")
            bump(
                "incremental"
                if report.mode == "incremental"
                else "full_fallbacks"
            )
            bump("webs_reused", report.webs_reused)
            bump("webs_recomputed", report.webs_recomputed)
            bump("clusters_reused", report.clusters_reused)
            bump("clusters_recomputed", report.clusters_recomputed)
            bump("procedures_patched", report.procedures_patched)
            bump("procedures_retained", report.procedures_retained)
            return database

    def compile_objects(
        self,
        phase1_results: list,
        database: ProgramDatabase,
        opt_level: int = 2,
        allocator: str | None = None,
    ) -> list:
        """Compiler second phase over every module (cached, parallel).

        Cache keys pair each module's phase-1 fingerprint with a digest
        of the directives its compilation can observe (plus the
        allocation strategy), so two databases that agree on a module's
        slice of directives share its object module no matter how much
        they differ elsewhere.
        """
        resolved = resolve_allocator(
            allocator if allocator is not None else self.allocator
        )
        tracer = self.tracer
        with self._timed("phase2"), tracer.span(
            "phase2", modules=len(phase1_results)
        ):
            objects: list = [None] * len(phase1_results)
            pending: list = []  # (index, cache key or None)
            for index, result in enumerate(phase1_results):
                key = None
                if self.cache is not None and result.fingerprint:
                    digest = database.directive_digest(
                        module_directive_names(result.ir_module)
                    )
                    key = phase2_key(
                        result.fingerprint, digest, opt_level,
                        allocator=resolved,
                    )
                    cached = self.cache.load("phase2", key)
                    if cached is not None:
                        objects[index] = cached
                        continue
                pending.append((index, key))
            self._count_tasks("phase2", len(pending))
            computed = self._run_labeled_tasks(
                "phase2",
                _phase2_task,
                [
                    (
                        phase1_results[index].ir_module,
                        database,
                        opt_level,
                        resolved,
                    )
                    for index, _key in pending
                ],
                [
                    getattr(
                        phase1_results[index].ir_module, "name",
                        str(index),
                    )
                    for index, _key in pending
                ],
            )
            for (index, key), obj in zip(pending, computed):
                objects[index] = obj
                if self.cache is not None and key is not None:
                    self.cache.store("phase2", key, obj)
            if tracer.enabled:
                recompiled = {index for index, _key in pending}
                for index, result in enumerate(phase1_results):
                    tracer.event(
                        "module-phase2",
                        module=getattr(
                            result.ir_module, "name", str(index)
                        ),
                        cached=index not in recompiled,
                        allocator=resolved,
                    )
        return objects

    def audit(
        self, executable: Executable, database: ProgramDatabase
    ):
        """Run the post-link allocation auditor; raise on violations.

        The report is kept on :attr:`last_audit_report` and its summary
        rides along on the next metrics snapshot either way.
        """
        with self._timed("verify"), self.tracer.span("verify"):
            # Counted before the audit runs: a raising auditor must
            # still show up in stage_tasks (and _timed's finally keeps
            # its wall-clock), or failed verification work would vanish
            # from the metrics.
            self._count_tasks("verify", 1)
            report = audit_executable(executable, database)
        self.last_audit_report = report
        self._last_audit_summary = report.summary()
        if self.tracer.enabled:
            self.tracer.event("audit", **report.summary())
        if not report.ok:
            raise AuditError(report)
        return report

    # -- whole-program conveniences ---------------------------------------

    def compile_with_database(
        self,
        phase1_results: list,
        database: ProgramDatabase,
        opt_level: int = 2,
        allocator: str | None = None,
    ) -> Executable:
        """Second phase + link, leaving phase-1 results intact."""
        objects = self.compile_objects(
            phase1_results, database, opt_level, allocator=allocator
        )
        executable = self._link(objects)
        if self.verify:
            self.audit(executable, database)
        return executable

    def _link(self, objects: list) -> Executable:
        with self._timed("link"), self.tracer.span("link"):
            executable = link(objects)
        if self.tracer.enabled:
            self.tracer.event(
                "link",
                modules=len(objects),
                functions=sorted(executable.function_entries),
                instructions=len(executable.instructions),
            )
        return executable

    def compile_program(
        self,
        sources,
        opt_level: int = 2,
        analyzer_options=None,
        allocator: str | None = None,
    ):
        """Full pipeline; the returned result carries this
        compilation's share of the scheduler metrics."""
        from repro.driver.pipeline import CompilationResult

        before = self.metrics_snapshot()
        phase1_results = self.run_phase1(sources, opt_level)
        if analyzer_options is not None:
            database = self.analyze(
                [result.summary for result in phase1_results],
                analyzer_options,
            )
        else:
            database = ProgramDatabase()
        objects = self.compile_objects(
            phase1_results, database, opt_level, allocator=allocator
        )
        executable = self._link(objects)
        if self.verify:
            self.audit(executable, database)
        return CompilationResult(
            executable,
            database,
            phase1_results,
            objects,
            metrics=self.metrics_snapshot().minus(before),
        )
