"""Content-addressed on-disk cache for compilation artifacts.

The paper's central engineering claim (sections 2 and 7.4) is that the
two compiler phases communicate *only* through summary files and the
program database, so nothing forces whole-program recompilation:

* phase 1 depends on one module's source text and the optimization
  level — nothing else;
* phase 2 depends on that module's phase-1 output plus the directive
  sets the database answers for the procedures the module defines or
  directly calls — and on nothing else in the database.

This module turns those two dependency statements into cache keys.  A
phase-1 artifact is stored under ``sha256(module name, opt level,
source text)``; a phase-2 object module under ``sha256(phase-1 key,
opt level, per-module directive digest)`` where the digest comes from
:meth:`repro.analyzer.database.ProgramDatabase.directive_digest`.
Editing one module therefore invalidates exactly that module's phase-1
entry, and changing :class:`~repro.analyzer.options.AnalyzerOptions`
invalidates only the phase-2 entries of modules whose directives
actually changed — the paper's recompilation story, made mechanical.

Entries are pickles framed by a magic string and a payload checksum;
a truncated, corrupted, or version-skewed entry is treated as a miss
(and deleted), never trusted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import Counter
from dataclasses import dataclass, field

#: Bump whenever the artifact format or the meaning of a key changes;
#: old entries then read as misses instead of poisoning new runs.
#: v2: LDW/STW grew the ``save_restore`` slot (pickled artifacts).
SCHEMA_VERSION = 2

_MAGIC = b"repro-cache-v%d\n" % SCHEMA_VERSION


def text_digest(text: str) -> str:
    """Hex digest of a source text (the content-address primitive)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def phase2_key(phase1_fingerprint: str, directive_digest: str,
               opt_level: int, allocator: str = "paper") -> str:
    """Cache key for one module's phase-2 object module.

    ``allocator`` is the resolved allocation-strategy name
    (:mod:`repro.backend.allocators`): strategies produce different
    object code from identical inputs, so they must never share cache
    entries.
    """
    token = "|".join(
        ("phase2", str(SCHEMA_VERSION), phase1_fingerprint,
         directive_digest, str(opt_level), allocator)
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Per-stage hit/miss/corruption/eviction counters."""

    hits: Counter = field(default_factory=Counter)
    misses: Counter = field(default_factory=Counter)
    bad_entries: Counter = field(default_factory=Counter)
    evictions: Counter = field(default_factory=Counter)

    def snapshot(self) -> dict:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "bad_entries": dict(self.bad_entries),
            "evictions": dict(self.evictions),
        }

    def clear(self) -> None:
        self.hits.clear()
        self.misses.clear()
        self.bad_entries.clear()
        self.evictions.clear()


class ArtifactCache:
    """A directory of checksummed, atomically-written pickle entries.

    ``load``/``store`` take a *stage* label ("phase1" / "phase2") used
    only for the statistics counters; the key alone addresses the entry.

    ``max_bytes`` caps the cache's on-disk size: every store evicts the
    least-recently-*accessed* entries (hits refresh an entry's mtime)
    until the total fits.  The entry just written is never the eviction
    victim, so a single oversized artifact degrades to a one-entry
    cache instead of thrashing.  ``None`` reads the cap from the
    ``REPRO_CACHE_MAX_BYTES`` environment variable; zero or an absent
    variable means unbounded (the historical behavior).

    ``shards`` splits the cache into independent LRU domains by key
    prefix: a key lives in shard ``int(key[:8], 16) % shards``, each
    shard keeps its own ``max_bytes`` cap, and a store only ever evicts
    entries from its own shard.  Many concurrent compile sessions (the
    compile service) therefore cannot thrash each other's hot entries
    through one global LRU.  The default of one shard is byte-identical
    to the historical single-domain layout — same paths, same eviction
    order.  ``None`` reads ``REPRO_CACHE_SHARDS``; absent means 1.
    """

    def __init__(self, root: str, max_bytes: int | None = None,
                 shards: int | None = None):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        if max_bytes is None:
            raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
            max_bytes = int(raw) if raw else 0
        self.max_bytes = max_bytes if max_bytes > 0 else None
        if shards is None:
            raw = os.environ.get("REPRO_CACHE_SHARDS", "").strip()
            shards = int(raw) if raw else 1
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.stats = CacheStats()

    def shard_of(self, key: str) -> int:
        """The shard a key lives in (always 0 for a 1-shard cache)."""
        if self.shards == 1:
            return 0
        return int(key[:8], 16) % self.shards

    def _shard_root(self, key: str) -> str:
        if self.shards == 1:
            # Exactly the historical layout: no shard directory level,
            # so existing caches keep working and the single-shard
            # configuration stays byte-identical on disk.
            return self.root
        return os.path.join(self.root, f"shard-{self.shard_of(key):03d}")

    def _path(self, key: str) -> str:
        return os.path.join(self._shard_root(key), key[:2], key + ".pkl")

    def load(self, stage: str, key: str):
        """Return the cached object or ``None`` on any kind of miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.stats.misses[stage] += 1
            return None
        payload = self._verify(blob)
        if payload is None:
            # Corrupt, truncated, or written by another schema version:
            # drop it so the recomputed artifact replaces it.
            self.stats.bad_entries[stage] += 1
            self.stats.misses[stage] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            artifact = pickle.loads(payload)
        except Exception:
            self.stats.bad_entries[stage] += 1
            self.stats.misses[stage] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.stats.hits[stage] += 1
        try:
            # Refresh the access time so the LRU eviction in store()
            # keeps hot entries (mtime doubles as last-access time:
            # atime is unreliable under relatime mounts).
            os.utime(path)
        except OSError:
            pass
        return artifact

    def store(self, stage: str, key: str, artifact) -> None:
        """Write an entry atomically (tempfile + rename)."""
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(digest)
                handle.write(b"\n")
                handle.write(payload)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._enforce_limit(
                stage, keep=path, root=self._shard_root(key)
            )

    @staticmethod
    def _verify(blob: bytes):
        """Return the payload bytes, or ``None`` if the entry is bad."""
        if not blob.startswith(_MAGIC):
            return None
        rest = blob[len(_MAGIC):]
        newline = rest.find(b"\n")
        if newline != 64:  # sha256 hex digest length
            return None
        digest, payload = rest[:newline], rest[newline + 1:]
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            return None
        return payload

    def _entries(self, root: str | None = None) -> list:
        """Every entry under ``root`` as ``(last_access, path, size)``
        (the whole cache when ``root`` is omitted)."""
        entries = []
        for dirpath, _dirnames, filenames in os.walk(root or self.root):
            for name in filenames:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                entries.append((status.st_mtime, path, status.st_size))
        return entries

    def total_bytes(self) -> int:
        """Current on-disk size of all entries (all shards)."""
        return sum(size for _mtime, _path, size in self._entries())

    def shard_bytes(self, shard: int) -> int:
        """Current on-disk size of one shard's entries."""
        if self.shards == 1:
            return self.total_bytes()
        root = os.path.join(self.root, f"shard-{shard:03d}")
        return sum(size for _mtime, _path, size in self._entries(root))

    def _enforce_limit(self, stage: str, keep: str, root: str) -> None:
        """Evict least-recently-accessed entries from the shard under
        ``root`` until it fits ``max_bytes``, sparing ``keep`` (the
        entry the triggering store just wrote).  Eviction never crosses
        a shard boundary: each shard is an independent LRU domain."""
        entries = self._entries(root)
        total = sum(size for _mtime, _path, size in entries)
        if total <= self.max_bytes:
            return
        for _mtime, path, size in sorted(entries):
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.stats.evictions[stage] += 1

    def __len__(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for name in filenames if name.endswith(".pkl"))
        return count
