"""End-to-end compilation pipeline."""

from repro.driver.pipeline import (
    CompilationResult,
    collect_profile,
    compile_and_run,
    compile_program,
    compile_with_database,
    run_phase1,
)

__all__ = [
    "CompilationResult",
    "collect_profile",
    "compile_and_run",
    "compile_program",
    "compile_with_database",
    "run_phase1",
]
