"""End-to-end compilation pipeline."""

from repro.driver.cache import ArtifactCache
from repro.driver.pipeline import (
    CompilationResult,
    collect_profile,
    compile_and_run,
    compile_program,
    compile_with_database,
    default_scheduler,
    run_phase1,
)
from repro.driver.scheduler import CompilationScheduler, MetricsSnapshot

__all__ = [
    "ArtifactCache",
    "CompilationResult",
    "CompilationScheduler",
    "MetricsSnapshot",
    "collect_profile",
    "compile_and_run",
    "compile_program",
    "compile_with_database",
    "default_scheduler",
    "run_phase1",
]
