"""End-to-end compilation driver (paper Figure 1).

The full two-pass flow::

    sources --phase 1--> (IR modules, summary files)
    summary files --program analyzer--> program database
    (IR modules, database) --phase 2--> object modules
    object modules --linker--> executable
    executable --PRISM simulator--> output + statistics

``compile_program`` runs everything; the intermediate artifacts are all
exposed so experiments can rerun only the stages they vary.  Because the
paper's Table 4 compiles the *same* program under seven analyzer
configurations, :func:`run_phase1` / :func:`compile_with_database` let
benchmarks share the phase-1 work: phase 2 deep-copies the IR so one
phase-1 result can feed many configurations.

Every function here delegates to a
:class:`~repro.driver.scheduler.CompilationScheduler`.  The module-level
default is serial and uncached (bit-identical to the historical driver);
pass ``scheduler=`` — or set ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` in the
environment before first use — to compile modules in parallel worker
processes and reuse cached per-module artifacts across runs.  See
``docs/PIPELINE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.analyzer.database import ProgramDatabase
from repro.analyzer.options import AnalyzerOptions
from repro.linker.link import Executable
from repro.machine.profiler import ProfileData
from repro.machine.simulator import ExecutionStats, run_executable

Sources = Union[dict, list]

_default_scheduler = None


def default_scheduler():
    """The process-wide scheduler behind the plain function API.

    Serial and uncached unless the ``REPRO_JOBS`` (worker count; ``0``
    means one per CPU) / ``REPRO_CACHE_DIR`` environment variables say
    otherwise at first use; ``REPRO_VERIFY=1`` additionally runs the
    post-link allocation auditor (:mod:`repro.verify.auditor`) on every
    linked executable, ``REPRO_INCREMENTAL=1`` routes the analyze stage
    through the incremental engine (:mod:`repro.incremental`),
    ``REPRO_CACHE_MAX_BYTES`` caps the artifact cache's on-disk size,
    and ``REPRO_ALLOCATOR`` picks the phase-2 allocation strategy
    (read at each compilation, like ``REPRO_SIM`` for the simulator).
    """
    global _default_scheduler
    if _default_scheduler is None:
        import os

        from repro.driver.scheduler import CompilationScheduler

        jobs: Optional[int] = int(os.environ.get("REPRO_JOBS", "1"))
        if jobs == 0:
            jobs = None  # auto: one worker per CPU
        _default_scheduler = CompilationScheduler(
            jobs=jobs, cache_dir=os.environ.get("REPRO_CACHE_DIR") or None
        )
    return _default_scheduler


@dataclass
class CompilationResult:
    """Everything produced by one full compilation.

    ``metrics`` (a :class:`~repro.driver.scheduler.MetricsSnapshot`)
    reports this compilation's per-stage wall-clock seconds, task
    counts, cache hit/miss/corruption/eviction counters, and — when the
    scheduler's post-link auditor is enabled (``REPRO_VERIFY=1``) — the
    allocation-audit summary (functions/calls checked, violations).
    """

    executable: Executable
    database: ProgramDatabase
    phase1_results: list = field(default_factory=list)
    objects: list = field(default_factory=list)
    metrics: object = None

    @property
    def summaries(self) -> list:
        return [result.summary for result in self.phase1_results]


def run_phase1(
    sources: Sources, opt_level: int = 2, scheduler=None
) -> list:
    """Compiler first phase over every module."""
    scheduler = scheduler or default_scheduler()
    return scheduler.run_phase1(sources, opt_level)


def compile_with_database(
    phase1_results: list,
    database: ProgramDatabase,
    opt_level: int = 2,
    scheduler=None,
    allocator: str | None = None,
) -> Executable:
    """Compiler second phase + link, leaving phase-1 results intact.

    ``allocator`` names the phase-2 allocation strategy
    (:mod:`repro.backend.allocators`); ``None`` defers to the
    scheduler's default and the ``REPRO_ALLOCATOR`` environment
    variable.
    """
    scheduler = scheduler or default_scheduler()
    return scheduler.compile_with_database(
        phase1_results, database, opt_level, allocator=allocator
    )


def compile_program(
    sources: Sources,
    opt_level: int = 2,
    analyzer_options: Optional[AnalyzerOptions] = None,
    scheduler=None,
    allocator: str | None = None,
) -> CompilationResult:
    """Compile a whole program.

    Args:
        sources: ``{module_name: source_text}`` or a list of pairs.
        opt_level: 0 (none) / 1 (local) / 2 (global; the paper's baseline).
        analyzer_options: ``None`` disables interprocedural register
            allocation entirely (the level-2 baseline); otherwise the
            program analyzer runs with these options.
        scheduler: A :class:`~repro.driver.scheduler.CompilationScheduler`
            to compile on (parallel workers, artifact cache); defaults
            to the serial, uncached module-level one.
        allocator: Phase-2 allocation strategy
            (:mod:`repro.backend.allocators`: ``paper``, ``linearscan``,
            ``spill-everywhere``); ``None`` defers to the scheduler's
            default and the ``REPRO_ALLOCATOR`` environment variable.
    """
    scheduler = scheduler or default_scheduler()
    return scheduler.compile_program(
        sources, opt_level, analyzer_options, allocator=allocator
    )


def compile_and_run(
    sources: Sources,
    opt_level: int = 2,
    analyzer_options: Optional[AnalyzerOptions] = None,
    max_cycles: int = 200_000_000,
    scheduler=None,
    allocator: str | None = None,
) -> ExecutionStats:
    """Compile and simulate in one call."""
    result = compile_program(
        sources, opt_level, analyzer_options, scheduler, allocator=allocator
    )
    return run_executable(result.executable, max_cycles)


def collect_profile(
    phase1_results: list,
    opt_level: int = 2,
    max_cycles: int = 200_000_000,
    scheduler=None,
    backend: str | None = None,
) -> ProfileData:
    """The gprof step: run the level-2 binary and harvest call counts.

    ``backend`` picks the simulator backend for the profiling run
    (``None`` defers to ``REPRO_SIM`` and the module default).
    """
    executable = compile_with_database(
        phase1_results, ProgramDatabase(), opt_level, scheduler
    )
    stats = run_executable(executable, max_cycles, backend=backend)
    return ProfileData.from_stats(stats)
