"""End-to-end compilation driver (paper Figure 1).

The full two-pass flow::

    sources --phase 1--> (IR modules, summary files)
    summary files --program analyzer--> program database
    (IR modules, database) --phase 2--> object modules
    object modules --linker--> executable
    executable --PRISM simulator--> output + statistics

``compile_program`` runs everything; the intermediate artifacts are all
exposed so experiments can rerun only the stages they vary.  Because the
paper's Table 4 compiles the *same* program under seven analyzer
configurations, :func:`run_phase1` / :func:`compile_with_database` let
benchmarks share the phase-1 work: phase 2 deep-copies the IR so one
phase-1 result can feed many configurations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.analyzer.database import ProgramDatabase
from repro.analyzer.driver import analyze_program
from repro.analyzer.options import AnalyzerOptions
from repro.backend.phase2 import compile_module_phase2
from repro.frontend.phase1 import Phase1Result, compile_module_phase1
from repro.linker.link import Executable, link
from repro.machine.profiler import ProfileData
from repro.machine.simulator import ExecutionStats, run_executable

Sources = Union[dict, list]


@dataclass
class CompilationResult:
    """Everything produced by one full compilation."""

    executable: Executable
    database: ProgramDatabase
    phase1_results: list = field(default_factory=list)
    objects: list = field(default_factory=list)

    @property
    def summaries(self) -> list:
        return [result.summary for result in self.phase1_results]


def _normalize_sources(sources: Sources) -> list:
    if isinstance(sources, dict):
        return sorted(sources.items())
    return list(sources)


def run_phase1(sources: Sources, opt_level: int = 2) -> list:
    """Compiler first phase over every module."""
    return [
        compile_module_phase1(text, name, opt_level)
        for name, text in _normalize_sources(sources)
    ]


def compile_with_database(
    phase1_results: list,
    database: ProgramDatabase,
    opt_level: int = 2,
) -> Executable:
    """Compiler second phase + link, leaving phase-1 results intact."""
    objects = []
    for result in phase1_results:
        ir_module = copy.deepcopy(result.ir_module)
        objects.append(
            compile_module_phase2(ir_module, database, opt_level)
        )
    return link(objects)


def compile_program(
    sources: Sources,
    opt_level: int = 2,
    analyzer_options: Optional[AnalyzerOptions] = None,
) -> CompilationResult:
    """Compile a whole program.

    Args:
        sources: ``{module_name: source_text}`` or a list of pairs.
        opt_level: 0 (none) / 1 (local) / 2 (global; the paper's baseline).
        analyzer_options: ``None`` disables interprocedural register
            allocation entirely (the level-2 baseline); otherwise the
            program analyzer runs with these options.
    """
    phase1_results = run_phase1(sources, opt_level)
    if analyzer_options is not None:
        database = analyze_program(
            [result.summary for result in phase1_results],
            analyzer_options,
        )
    else:
        database = ProgramDatabase()
    objects = []
    for result in phase1_results:
        ir_module = copy.deepcopy(result.ir_module)
        objects.append(
            compile_module_phase2(ir_module, database, opt_level)
        )
    executable = link(objects)
    return CompilationResult(executable, database, phase1_results, objects)


def compile_and_run(
    sources: Sources,
    opt_level: int = 2,
    analyzer_options: Optional[AnalyzerOptions] = None,
    max_cycles: int = 200_000_000,
) -> ExecutionStats:
    """Compile and simulate in one call."""
    result = compile_program(sources, opt_level, analyzer_options)
    return run_executable(result.executable, max_cycles)


def collect_profile(
    phase1_results: list,
    opt_level: int = 2,
    max_cycles: int = 200_000_000,
) -> ProfileData:
    """The gprof step: run the level-2 binary and harvest call counts."""
    executable = compile_with_database(
        phase1_results, ProgramDatabase(), opt_level
    )
    stats = run_executable(executable, max_cycles)
    return ProfileData.from_stats(stats)
