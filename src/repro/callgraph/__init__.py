"""Program call graph and interprocedural reference dataflow."""

from repro.callgraph.dataflow import (
    ReferenceSets,
    compute_reference_sets,
    eligible_globals,
)
from repro.callgraph.graph import CallGraph, CallGraphNode

__all__ = [
    "CallGraph",
    "CallGraphNode",
    "ReferenceSets",
    "compute_reference_sets",
    "eligible_globals",
]
