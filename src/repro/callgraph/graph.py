"""Program call graph built from summary files.

Nodes are procedures; edges carry estimated (or profiled) call
frequencies.  Indirect calls are handled conservatively (paper section
7.3): every procedure whose address has been computed anywhere in the
program is a potential target of every indirect call site.

The analyzer normalizes raw heuristic call counts over the whole graph
(section 6.2): absolute node weights are propagated top-down through the
SCC condensation, with extra weight on recursive components, so that a
procedure called from a hot loop deep in the program outweighs one called
once from ``main``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.dominators import DominatorTree, compute_dominators
from repro.frontend.summary import ModuleSummary, ProcedureSummary

# Weight multiplier applied to members of recursive components, mirroring
# the paper's "increasing the weights on recursive arcs".
RECURSION_BOOST = 10.0
_MAX_WEIGHT = 1e15

# Pseudo-node standing for unknown callers of a *partial* call graph
# (paper section 7.2): it calls every exported procedure and, being an
# unknown party, may also make indirect calls to any address-taken
# procedure.  It is never given directives, never joins a web or a
# cluster, and never acts as a cluster root.
EXTERNAL_CALLER = "<external>"


@dataclass
class CallGraphNode:
    """One procedure in the program call graph."""

    name: str
    summary: ProcedureSummary
    successors: dict = field(default_factory=dict)  # callee -> local freq
    predecessors: dict = field(default_factory=dict)  # caller -> local freq
    weight: float = 0.0  # normalized absolute invocation estimate

    def __repr__(self) -> str:
        return f"<cgnode {self.name}>"


class CallGraph:
    """The whole-program call graph."""

    def __init__(self):
        self.nodes: dict[str, CallGraphNode] = {}
        self.indirect_targets: set[str] = set()

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        summaries: Iterable[ModuleSummary],
        exported: Optional[set] = None,
    ) -> "CallGraph":
        """Construct the graph from all modules' summary files.

        ``exported`` marks the program as a *partial* call graph
        (section 7.2): a pseudo :data:`EXTERNAL_CALLER` node calls every
        listed procedure (and, conservatively, every address-taken
        procedure), standing in for unknown outside callers.
        """
        graph = cls()
        for module_summary in summaries:
            for procedure in module_summary.procedures:
                if procedure.name in graph.nodes:
                    raise ValueError(
                        f"duplicate procedure {procedure.name!r} in summaries"
                    )
                graph.nodes[procedure.name] = CallGraphNode(
                    procedure.name, procedure
                )
        if exported is not None:
            from repro.frontend.summary import ProcedureSummary

            unknown = {p: 1 for p in exported if p in graph.nodes}
            graph.nodes[EXTERNAL_CALLER] = CallGraphNode(
                EXTERNAL_CALLER,
                ProcedureSummary(
                    name=EXTERNAL_CALLER,
                    module=EXTERNAL_CALLER,
                    calls=unknown,
                    makes_indirect_calls=True,
                ),
            )
        for node in graph.nodes.values():
            for target in node.summary.address_taken_procs:
                if target in graph.nodes:
                    graph.indirect_targets.add(target)
        for node in graph.nodes.values():
            for callee, frequency in node.summary.calls.items():
                if callee in graph.nodes:
                    node.successors[callee] = (
                        node.successors.get(callee, 0) + frequency
                    )
            if node.summary.makes_indirect_calls:
                indirect_freq = getattr(
                    node.summary, "indirect_call_freq", 1
                ) or 1
                for target in graph.indirect_targets:
                    node.successors[target] = (
                        node.successors.get(target, 0) + indirect_freq
                    )
        for node in graph.nodes.values():
            for callee, frequency in node.successors.items():
                graph.nodes[callee].predecessors[node.name] = frequency
        return graph

    # -- queries ---------------------------------------------------------

    def start_nodes(self) -> list[str]:
        """Nodes without predecessors (paper: every such node is a start
        node).  Falls back to ``main`` if the graph is fully cyclic."""
        starts = [
            name for name, node in self.nodes.items() if not node.predecessors
        ]
        if not starts and "main" in self.nodes:
            starts = ["main"]
        return sorted(starts)

    def successors(self, name: str) -> list[str]:
        return sorted(self.nodes[name].successors)

    def predecessors(self, name: str) -> list[str]:
        return sorted(self.nodes[name].predecessors)

    def dominator_tree(self) -> DominatorTree:
        """Dominators with every start node treated as a root."""
        return compute_dominators(
            self.nodes.keys(),
            self.start_nodes(),
            lambda name: self.nodes[name].successors.keys(),
        )

    # -- strongly connected components -------------------------------------

    def strongly_connected_components(self) -> list[list[str]]:
        """Tarjan's algorithm; components in reverse topological order.

        The result is memoized (topology is immutable once built) and
        shared between callers — callers must not mutate it.
        """
        cached = getattr(self, "_scc_cache", None)
        if cached is not None:
            return cached
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        components: list[list[str]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(self.nodes[root].successors)))]
            index[root] = lowlink[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index:
                        index[successor] = lowlink[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append(
                            (successor,
                             iter(sorted(self.nodes[successor].successors)))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for name in sorted(self.nodes):
            if name not in index:
                strongconnect(name)
        self._scc_cache = components
        return components

    def recursive_nodes(self) -> set[str]:
        """Nodes on some recursive call chain (SCC > 1 or self loop)."""
        recursive: set[str] = set()
        for component in self.strongly_connected_components():
            if len(component) > 1:
                recursive.update(component)
        for name, node in self.nodes.items():
            if name in node.successors:
                recursive.add(name)
        return recursive

    # -- call count normalization -------------------------------------------

    def normalize_weights(self, profile=None) -> None:
        """Compute absolute node weights (``node.weight``).

        With profile data, weights are actual invocation counts.  Without,
        heuristic local frequencies are propagated top-down through the
        SCC condensation, boosting recursive components.
        """
        # Weight-derived caches must not survive a re-normalization.
        self._priority_info = None
        if profile is not None:
            for node in self.nodes.values():
                node.weight = float(profile.node_count(node.name))
            for start in self.start_nodes():
                self.nodes[start].weight = max(
                    self.nodes[start].weight, 1.0
                )
            return

        components = self.strongly_connected_components()
        component_of: dict[str, int] = {}
        for comp_index, component in enumerate(components):
            for name in component:
                component_of[name] = comp_index

        weights = {name: 0.0 for name in self.nodes}
        for start in self.start_nodes():
            weights[start] = 1.0

        # Reverse topological order of SCCs -> process callers first.
        for component in reversed(components):
            is_recursive = len(component) > 1 or any(
                name in self.nodes[name].successors for name in component
            )
            if is_recursive:
                boost = RECURSION_BOOST
                for name in component:
                    weights[name] = min(
                        weights[name] * boost or 0.0, _MAX_WEIGHT
                    )
                # Distribute entry weight across the component: every
                # member is assumed to run as often as the component.
                total = sum(weights[name] for name in component)
                total = min(max(total, 1.0) * boost, _MAX_WEIGHT)
                for name in component:
                    weights[name] = max(weights[name], total)
            for name in component:
                node_weight = max(weights[name], 0.0)
                for callee, local_freq in self.nodes[name].successors.items():
                    if component_of[callee] == component_of[name]:
                        continue  # intra-component edges already handled
                    weights[callee] = min(
                        weights[callee] + node_weight * local_freq,
                        _MAX_WEIGHT,
                    )
        for name, node in self.nodes.items():
            node.weight = weights[name]

    def edge_weight(self, caller: str, callee: str,
                    profile=None) -> float:
        """Absolute estimated count for one call edge."""
        if profile is not None:
            counted = profile.edge_count(caller, callee)
            if counted:
                return float(counted)
            # The profile may miss conservative indirect edges; fall back
            # to a tiny heuristic weight so orderings stay total.
            return 0.0
        local = self.nodes[caller].successors.get(callee, 0)
        return self.nodes[caller].weight * local
