"""Interprocedural reference-set dataflow (paper section 4.1.2).

For every procedure P and the set of globals *eligible* for promotion:

* ``L_REF[P]`` — globals P accesses directly (from the summary files);
* ``P_REF[P]`` — globals accessed somewhere on a call chain from a start
  node to P (exclusive of P);
* ``C_REF[P]`` — globals accessed somewhere on a call chain starting at
  P (exclusive of P).

The fixpoint equations::

    P_REF[P] = U over predecessors i of P:  P_REF[i] U L_REF[i]
    C_REF[P] = U over successors  i of P:  C_REF[i] U L_REF[i]

As the paper notes, C_REF converges fastest bottom-up (reverse
postorder reversed) and P_REF top-down (reverse postorder); both are
iterated to a fixpoint because call graphs contain cycles.

The equations are only correct for unaliased globals, which is exactly
the eligibility criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.packed import DenseIndex, PackedGraph, resolve_dataflow
from repro.callgraph.graph import CallGraph


@dataclass
class ReferenceSets:
    """The computed L_REF / P_REF / C_REF sets."""

    l_ref: dict = field(default_factory=dict)  # name -> frozenset[str]
    p_ref: dict = field(default_factory=dict)
    c_ref: dict = field(default_factory=dict)


def compute_reference_sets(
    graph: CallGraph, eligible: set, mode: str | None = None
) -> ReferenceSets:
    """Run the dataflow over ``graph`` restricted to ``eligible`` globals."""
    if resolve_dataflow(mode) == "packed":
        return _compute_reference_sets_packed(graph, eligible)
    l_ref: dict[str, set] = {}
    for name, node in graph.nodes.items():
        l_ref[name] = {
            g for g in node.summary.global_refs if g in eligible
        }

    order = _reverse_postorder(graph)

    # P_REF: top-down propagation.
    p_ref: dict[str, set] = {name: set() for name in graph.nodes}
    changed = True
    while changed:
        changed = False
        for name in order:
            incoming: set = set()
            for predecessor in graph.nodes[name].predecessors:
                incoming |= p_ref[predecessor]
                incoming |= l_ref[predecessor]
            if incoming != p_ref[name]:
                p_ref[name] = incoming
                changed = True

    # C_REF: bottom-up propagation.
    c_ref: dict[str, set] = {name: set() for name in graph.nodes}
    changed = True
    while changed:
        changed = False
        for name in reversed(order):
            outgoing: set = set()
            for successor in graph.nodes[name].successors:
                outgoing |= c_ref[successor]
                outgoing |= l_ref[successor]
            if outgoing != c_ref[name]:
                c_ref[name] = outgoing
                changed = True

    return ReferenceSets(
        l_ref={name: frozenset(values) for name, values in l_ref.items()},
        p_ref={name: frozenset(values) for name, values in p_ref.items()},
        c_ref={name: frozenset(values) for name, values in c_ref.items()},
    )


def _compute_reference_sets_packed(
    graph: CallGraph, eligible: set
) -> ReferenceSets:
    """Bitmask kernel: same equations, one big-int op per edge visit.

    Globals get a dense bit index; each node's three facts are single
    integers, and the two fixpoints run on worklists (seeded in the same
    reverse postorder the reference sweeps use, re-queueing only the
    affected neighbours) instead of whole-graph changed-flag passes.
    The fixpoint of a monotone union system is unique, so the resulting
    frozensets equal the reference kernel's exactly.
    """
    packed = PackedGraph.of(graph)
    names = packed.names
    node_of = packed.index.index_of
    count = len(names)

    referenced: set = set()
    for node in graph.nodes.values():
        referenced.update(
            g for g in node.summary.global_refs if g in eligible
        )
    globals_index = DenseIndex(sorted(referenced))

    # ``decoded`` (mask -> frozenset) also serves the final conversion:
    # L_REF frozensets are built from the reference lists right here,
    # sparing a bit-decode per node.
    decoded: dict[int, frozenset] = {}
    l_sets: dict[str, frozenset] = {}
    l_mask = [0] * count
    lref_by_variable: dict[str, int] = {}
    index_of = globals_index.index_of
    for name, node in graph.nodes.items():
        mask = 0
        node_bit = 1 << node_of[name]
        refs = []
        for g in node.summary.global_refs:
            if g in eligible:
                mask |= 1 << index_of[g]
                refs.append(g)
                lref_by_variable[g] = lref_by_variable.get(g, 0) | node_bit
        l_mask[node_of[name]] = mask
        cached = decoded.get(mask)
        if cached is None:
            cached = decoded[mask] = frozenset(refs)
        l_sets[name] = cached

    order = [node_of[name] for name in _reverse_postorder(graph)]
    pred_idx = [0] * count
    succ_idx = [0] * count
    for name, node in graph.nodes.items():
        i = node_of[name]
        pred_idx[i] = [node_of[p] for p in node.predecessors]
        succ_idx[i] = [node_of[s] for s in node.successors]

    # P_REF: top-down; seed so callers pop before callees.
    p_mask = [0] * count
    stack = list(reversed(order))
    queued = set(stack)
    while stack:
        i = stack.pop()
        queued.discard(i)
        incoming = 0
        for j in pred_idx[i]:
            incoming |= p_mask[j] | l_mask[j]
        if incoming != p_mask[i]:
            p_mask[i] = incoming
            for j in succ_idx[i]:
                if j not in queued:
                    queued.add(j)
                    stack.append(j)

    # C_REF: bottom-up; seed so callees pop before callers.
    c_mask = [0] * count
    stack = list(order)
    queued = set(stack)
    while stack:
        i = stack.pop()
        queued.discard(i)
        outgoing = 0
        for j in succ_idx[i]:
            outgoing |= c_mask[j] | l_mask[j]
        if outgoing != c_mask[i]:
            c_mask[i] = outgoing
            for j in pred_idx[i]:
                if j not in queued:
                    queued.add(j)
                    stack.append(j)

    # Many nodes share a mask (empty, or one module's working set), so
    # the mask -> frozenset decoding is deduplicated.
    def frozenset_of(mask: int) -> frozenset:
        value = decoded.get(mask)
        if value is None:
            value = globals_index.frozenset_of(mask)
            decoded[mask] = value
        return value

    sets = ReferenceSets(
        l_ref=l_sets,
        p_ref={name: frozenset_of(p_mask[i]) for i, name in enumerate(names)},
        c_ref={name: frozenset_of(c_mask[i]) for i, name in enumerate(names)},
    )

    # Stash the variable-major transpose for the packed web kernels
    # (they would otherwise rebuild it from the frozensets).  L_REF was
    # transposed inline above; P_REF / C_REF facts repeat heavily across
    # the nodes of a module, so those are grouped by identical mask
    # first and each distinct mask is decoded once.
    items = globals_index.items

    def transpose(mask_list: list) -> dict:
        groups: dict[int, int] = {}
        for i, node_mask in enumerate(mask_list):
            if node_mask:
                groups[node_mask] = groups.get(node_mask, 0) | (1 << i)
        by_variable: dict[str, int] = {}
        get = by_variable.get
        for globals_mask, nodes_mask in groups.items():
            base = ((globals_mask & -globals_mask).bit_length() - 1) & ~63
            remaining = globals_mask >> base
            while remaining:
                g = base + (remaining & -remaining).bit_length() - 1
                remaining &= remaining - 1
                name = items[g]
                by_variable[name] = get(name, 0) | nodes_mask
        return by_variable

    sets._packed_variable_masks = (
        packed, lref_by_variable, transpose(p_mask), transpose(c_mask)
    )
    return sets


def _reverse_postorder(graph: CallGraph) -> list[str]:
    """Reverse postorder from the start nodes (callers before callees,
    cycles aside); unreachable nodes are appended at the end."""
    visited: set[str] = set()
    postorder: list[str] = []

    def dfs(root: str) -> None:
        stack = [(root, iter(graph.successors(root)))]
        visited.add(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    for start in graph.start_nodes():
        if start not in visited:
            dfs(start)
    for name in sorted(graph.nodes):
        if name not in visited:
            dfs(name)
    return list(reversed(postorder))


def eligible_globals(summaries) -> set:
    """Globals eligible for interprocedural promotion (section 4.1.2).

    A global is eligible iff it is a word-sized scalar and no module ever
    computed its address (no aliasing).
    """
    eligible: set[str] = set()
    aliased: set[str] = set()
    for module_summary in summaries:
        aliased.update(module_summary.aliased_globals)
        for var in module_summary.globals:
            if var.is_scalar_word and not var.address_taken:
                eligible.add(var.name)
            else:
                aliased.add(var.name)
    return eligible - aliased


def classify_globals(summaries) -> dict:
    """Map every declared global to its ineligibility reasons.

    Returns ``name -> tuple of reason codes``; an empty tuple means the
    global is eligible.  The reasons mirror :func:`eligible_globals`
    exactly: ``"not-scalar-word"``, ``"address-taken"`` (some module
    computed its address), ``"aliased"`` (listed in a module's
    ``aliased_globals``).
    """
    reasons: dict[str, set] = {}
    aliased: set[str] = set()
    for module_summary in summaries:
        aliased.update(module_summary.aliased_globals)
        for var in module_summary.globals:
            entry = reasons.setdefault(var.name, set())
            if not var.is_scalar_word:
                entry.add("not-scalar-word")
            if var.address_taken:
                entry.add("address-taken")
    for name in aliased:
        reasons.setdefault(name, set()).add("aliased")
    return {
        name: tuple(sorted(entry)) for name, entry in reasons.items()
    }
