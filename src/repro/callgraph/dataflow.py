"""Interprocedural reference-set dataflow (paper section 4.1.2).

For every procedure P and the set of globals *eligible* for promotion:

* ``L_REF[P]`` — globals P accesses directly (from the summary files);
* ``P_REF[P]`` — globals accessed somewhere on a call chain from a start
  node to P (exclusive of P);
* ``C_REF[P]`` — globals accessed somewhere on a call chain starting at
  P (exclusive of P).

The fixpoint equations::

    P_REF[P] = U over predecessors i of P:  P_REF[i] U L_REF[i]
    C_REF[P] = U over successors  i of P:  C_REF[i] U L_REF[i]

As the paper notes, C_REF converges fastest bottom-up (reverse
postorder reversed) and P_REF top-down (reverse postorder); both are
iterated to a fixpoint because call graphs contain cycles.

The equations are only correct for unaliased globals, which is exactly
the eligibility criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph


@dataclass
class ReferenceSets:
    """The computed L_REF / P_REF / C_REF sets."""

    l_ref: dict = field(default_factory=dict)  # name -> frozenset[str]
    p_ref: dict = field(default_factory=dict)
    c_ref: dict = field(default_factory=dict)


def compute_reference_sets(
    graph: CallGraph, eligible: set
) -> ReferenceSets:
    """Run the dataflow over ``graph`` restricted to ``eligible`` globals."""
    l_ref: dict[str, set] = {}
    for name, node in graph.nodes.items():
        l_ref[name] = {
            g for g in node.summary.global_refs if g in eligible
        }

    order = _reverse_postorder(graph)

    # P_REF: top-down propagation.
    p_ref: dict[str, set] = {name: set() for name in graph.nodes}
    changed = True
    while changed:
        changed = False
        for name in order:
            incoming: set = set()
            for predecessor in graph.nodes[name].predecessors:
                incoming |= p_ref[predecessor]
                incoming |= l_ref[predecessor]
            if incoming != p_ref[name]:
                p_ref[name] = incoming
                changed = True

    # C_REF: bottom-up propagation.
    c_ref: dict[str, set] = {name: set() for name in graph.nodes}
    changed = True
    while changed:
        changed = False
        for name in reversed(order):
            outgoing: set = set()
            for successor in graph.nodes[name].successors:
                outgoing |= c_ref[successor]
                outgoing |= l_ref[successor]
            if outgoing != c_ref[name]:
                c_ref[name] = outgoing
                changed = True

    return ReferenceSets(
        l_ref={name: frozenset(values) for name, values in l_ref.items()},
        p_ref={name: frozenset(values) for name, values in p_ref.items()},
        c_ref={name: frozenset(values) for name, values in c_ref.items()},
    )


def _reverse_postorder(graph: CallGraph) -> list[str]:
    """Reverse postorder from the start nodes (callers before callees,
    cycles aside); unreachable nodes are appended at the end."""
    visited: set[str] = set()
    postorder: list[str] = []

    def dfs(root: str) -> None:
        stack = [(root, iter(graph.successors(root)))]
        visited.add(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()

    for start in graph.start_nodes():
        if start not in visited:
            dfs(start)
    for name in sorted(graph.nodes):
        if name not in visited:
            dfs(name)
    return list(reversed(postorder))


def eligible_globals(summaries) -> set:
    """Globals eligible for interprocedural promotion (section 4.1.2).

    A global is eligible iff it is a word-sized scalar and no module ever
    computed its address (no aliasing).
    """
    eligible: set[str] = set()
    aliased: set[str] = set()
    for module_summary in summaries:
        aliased.update(module_summary.aliased_globals)
        for var in module_summary.globals:
            if var.is_scalar_word and not var.address_taken:
                eligible.add(var.name)
            else:
                aliased.add(var.name)
    return eligible - aliased


def classify_globals(summaries) -> dict:
    """Map every declared global to its ineligibility reasons.

    Returns ``name -> tuple of reason codes``; an empty tuple means the
    global is eligible.  The reasons mirror :func:`eligible_globals`
    exactly: ``"not-scalar-word"``, ``"address-taken"`` (some module
    computed its address), ``"aliased"`` (listed in a module's
    ``aliased_globals``).
    """
    reasons: dict[str, set] = {}
    aliased: set[str] = set()
    for module_summary in summaries:
        aliased.update(module_summary.aliased_globals)
        for var in module_summary.globals:
            entry = reasons.setdefault(var.name, set())
            if not var.is_scalar_word:
                entry.add("not-scalar-word")
            if var.address_taken:
                entry.add("address-taken")
    for name in aliased:
        reasons.setdefault(name, set()).add("aliased")
    return {
        name: tuple(sorted(entry)) for name, entry in reasons.items()
    }
