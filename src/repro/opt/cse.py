"""Local common-subexpression elimination (value numbering per block).

Pure computations (``BinOp``, ``UnOp``, ``LoadAddr``, ``FrameAddr``) with
operands identical to an earlier computation in the same block are replaced
by a ``Move`` from the earlier result.  Memory reads are *not* value
numbered here — redundant global loads are handled by the global-caching
pass (:mod:`repro.opt.localprom`), which knows the aliasing rules.

Division/remainder are value-numbered too: identical operands produce the
same value and the same (possible) trap, and the first occurrence is kept.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.instructions import BinOp, FrameAddr, LoadAddr, Move, UnOp
from repro.ir.values import Const, Operand, Temp


def _operand_key(operand: Operand):
    if isinstance(operand, Const):
        return ("const", operand.value)
    return ("temp", id(operand))


def _expression_key(instruction):
    """A hashable key identifying the computation, or None if not pure."""
    if isinstance(instruction, BinOp):
        return (
            "bin",
            instruction.op,
            _operand_key(instruction.lhs),
            _operand_key(instruction.rhs),
        )
    if isinstance(instruction, UnOp):
        return ("un", instruction.op, _operand_key(instruction.operand))
    if isinstance(instruction, LoadAddr):
        return ("addr", instruction.symbol, instruction.is_function)
    if isinstance(instruction, FrameAddr):
        return ("frame", id(instruction.slot))
    return None


def run(function: IRFunction) -> bool:
    """Run the pass; returns True if any expression was reused."""
    from repro.analysis.liveness import _is_user_call

    changed = False
    pinned = set(function.pinned_temps)
    for block in function.blocks.values():
        available: dict[tuple, Temp] = {}
        keys_mentioning: dict[int, list[tuple]] = {}
        new_instructions = []
        for instruction in block.instructions:
            if pinned and _is_user_call(instruction):
                # Expressions over promoted globals' registers, and cached
                # results living in them, are stale after a call.
                for temp in pinned:
                    for stale in keys_mentioning.pop(id(temp), []):
                        available.pop(stale, None)
                result_stale = [
                    k for k, v in available.items() if v in pinned
                ]
                for stale in result_stale:
                    available.pop(stale, None)
            key = _expression_key(instruction)
            if key is not None and key in available:
                instruction = Move(instruction.defs()[0], available[key])
                key = None
                changed = True
            for defined in instruction.defs():
                # Expressions using the redefined temp are stale, as are
                # expressions whose cached result it was.
                for stale in keys_mentioning.pop(id(defined), []):
                    available.pop(stale, None)
                result_stale = [
                    k for k, v in available.items() if v is defined
                ]
                for stale in result_stale:
                    available.pop(stale, None)
            if key is not None:
                result = instruction.defs()[0]
                available[key] = result
                for used in instruction.uses():
                    if isinstance(used, Temp):
                        keys_mentioning.setdefault(id(used), []).append(key)
            new_instructions.append(instruction)
        block.instructions = new_instructions
    return changed
