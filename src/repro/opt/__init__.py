"""Traditional ("level 2") intraprocedural optimizations."""

from repro.opt.pipeline import optimize_function, optimize_module

__all__ = ["optimize_function", "optimize_module"]
