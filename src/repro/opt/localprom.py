"""Intraprocedural global-variable caching ("local promotion").

This is the baseline behaviour the paper ascribes to level-2 optimizers
(section 4.1): within a procedure, a global can live in a register, but it
must be stored back before calls and loaded again afterwards, because the
callee may reference it from memory.

The pass caches each scalar global in a dedicated temp *per basic block*:

* the first read loads it once; later reads in the block reuse the temp;
* writes update the temp and mark it dirty; the memory copy is written
  back at the latest safe point (before a call, before an aliasing store,
  or at block end);
* calls invalidate all cached values (the callee may write the global);
* stores through pointers invalidate cached values of globals that may be
  aliased; loads through pointers only force a write-back of dirty values.

A ``static`` global whose address is never taken in its defining module
cannot be aliased by pointer accesses (no other module can name it), so
its cache survives pointer stores — but not calls, since other procedures
of the same module may still access it directly.

The interprocedural web promotion of the program analyzer runs *before*
this pass and removes promoted globals' loads/stores entirely, so this
pass only ever sees the globals that were not interprocedurally promoted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Call,
    CallIndirect,
    Load,
    LoadGlobal,
    Move,
    Store,
    StoreGlobal,
)
from repro.ir.module import IRModule
from repro.ir.values import Temp


@dataclass
class _CacheEntry:
    temp: Temp
    dirty: bool = False


def run(function: IRFunction, module: IRModule) -> bool:
    """Run the pass; returns True if any access was rewritten."""
    cache_temps: dict[str, Temp] = {}
    changed = False

    def temp_for(symbol: str) -> Temp:
        if symbol not in cache_temps:
            cache_temps[symbol] = function.new_temp(f"gcache.{symbol}")
        return cache_temps[symbol]

    def may_be_pointer_aliased(symbol: str) -> bool:
        var = module.globals.get(symbol)
        if var is None:
            # Defined in another module; assume the worst.
            return True
        if not var.is_static:
            # Another module may have taken its address.
            return True
        return var.address_taken

    for block in function.blocks.values():
        cache: dict[str, _CacheEntry] = {}
        out: list = []

        def flush(symbol: str) -> None:
            entry = cache[symbol]
            if entry.dirty:
                out.append(StoreGlobal(symbol, entry.temp))
                entry.dirty = False

        def flush_all_dirty() -> None:
            for symbol in list(cache):
                flush(symbol)

        for instruction in block.instructions:
            if isinstance(instruction, LoadGlobal):
                symbol = instruction.symbol
                if symbol not in cache:
                    temp = temp_for(symbol)
                    out.append(LoadGlobal(temp, symbol))
                    cache[symbol] = _CacheEntry(temp)
                out.append(Move(instruction.dst, cache[symbol].temp))
                changed = True
            elif isinstance(instruction, StoreGlobal):
                symbol = instruction.symbol
                temp = temp_for(symbol)
                out.append(Move(temp, instruction.src))
                cache[symbol] = _CacheEntry(temp, dirty=True)
                changed = True
            elif isinstance(instruction, (Call, CallIndirect)):
                flush_all_dirty()
                cache.clear()
                out.append(instruction)
            elif isinstance(instruction, Store):
                # A store through a pointer may hit any aliased global.
                for symbol in list(cache):
                    if may_be_pointer_aliased(symbol):
                        flush(symbol)
                        del cache[symbol]
                out.append(instruction)
            elif isinstance(instruction, Load):
                # The load must observe up-to-date memory.
                for symbol in list(cache):
                    if may_be_pointer_aliased(symbol):
                        flush(symbol)
                out.append(instruction)
            else:
                out.append(instruction)
        flush_all_dirty()
        block.instructions = out
    return changed
