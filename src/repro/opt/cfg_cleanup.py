"""Control-flow graph cleanup.

Three transformations, iterated to a fixpoint:

* unreachable-block removal,
* jump threading through empty forwarding blocks,
* merging a block into its unique ``Jump`` successor when that successor
  has no other predecessors.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.instructions import CJump, Jump


def run(function: IRFunction) -> bool:
    """Run the cleanup; returns True if the CFG changed."""
    changed = False
    while True:
        round_changed = False
        round_changed |= function.remove_unreachable_blocks() > 0
        round_changed |= _thread_jumps(function)
        round_changed |= function.merge_straightline_blocks() > 0
        round_changed |= _collapse_identical_cjump_targets(function)
        if not round_changed:
            return changed
        changed = True


def _thread_jumps(function: IRFunction) -> bool:
    """Redirect branches that target empty forwarding blocks."""
    forwarding: dict[str, str] = {}
    for block in function.blocks.values():
        if not block.instructions and isinstance(block.terminator, Jump):
            if block.terminator.target != block.label:
                forwarding[block.label] = block.terminator.target

    def resolve(label: str) -> str:
        seen = set()
        while label in forwarding and label not in seen:
            seen.add(label)
            label = forwarding[label]
        return label

    changed = False
    for block in function.blocks.values():
        terminator = block.terminator
        if terminator is None:
            continue
        for target in list(terminator.successors()):
            final = resolve(target)
            if final != target:
                terminator.replace_successor(target, final)
                changed = True
    # The entry block itself may be a forwarder; we cannot delete it, but
    # unreachable-block removal will drop any blocks it bypassed.
    return changed


def _collapse_identical_cjump_targets(function: IRFunction) -> bool:
    """``cjump c ? L : L`` becomes ``jump L``."""
    changed = False
    for block in function.blocks.values():
        terminator = block.terminator
        if (
            isinstance(terminator, CJump)
            and terminator.true_target == terminator.false_target
        ):
            block.terminator = Jump(terminator.true_target)
            changed = True
    return changed
