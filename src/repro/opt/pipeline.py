"""Optimization pass pipeline.

Optimization levels mirror the paper's setting:

* **0** — no optimization (straight lowering output).
* **1** — local optimizations: constant folding, copy propagation, local
  CSE, dead-code elimination, CFG cleanup.
* **2** — level 1 plus intraprocedural global-variable caching, the
  baseline against which the paper measures all interprocedural results.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.module import IRModule
from repro.opt import cfg_cleanup, constant_folding, copy_propagation, cse, dce
from repro.opt import localprom

_MAX_ITERATIONS = 8


def _local_fixpoint(function: IRFunction) -> bool:
    changed_any = False
    for _ in range(_MAX_ITERATIONS):
        changed = False
        changed |= constant_folding.run(function)
        changed |= copy_propagation.run(function)
        changed |= cse.run(function)
        changed |= dce.run(function)
        changed |= cfg_cleanup.run(function)
        changed_any |= changed
        if not changed:
            break
    return changed_any


def optimize_function(
    function: IRFunction, module: IRModule, opt_level: int
) -> None:
    """Run the pipeline for ``opt_level`` on one function, in place."""
    if opt_level <= 0:
        return
    _local_fixpoint(function)
    if opt_level >= 2:
        localprom.run(function, module)
        _local_fixpoint(function)


def optimize_module(module: IRModule, opt_level: int) -> None:
    """Optimize every function in the module, in place."""
    for function in module.functions.values():
        optimize_function(function, module, opt_level)
