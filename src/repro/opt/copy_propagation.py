"""Local copy propagation.

Within a block, after ``dst = src`` every use of ``dst`` is replaced by
``src`` until either side is redefined.  Dead ``Move`` instructions are
left for DCE to sweep.
"""

from __future__ import annotations

from repro.ir.function import IRFunction
from repro.ir.instructions import Move
from repro.ir.values import Operand, Temp


def run(function: IRFunction) -> bool:
    """Run the pass; returns True if any use was rewritten."""
    from repro.analysis.liveness import _is_user_call

    changed = False
    pinned = set(function.pinned_temps)
    for block in function.blocks.values():
        env: dict[Temp, Operand] = {}
        for instruction in block.instructions:
            if pinned and _is_user_call(instruction):
                # Calls may read and rewrite promoted globals' registers:
                # copies into or out of pinned temps do not survive.
                stale = [
                    k for k, v in env.items()
                    if k in pinned or v in pinned
                ]
                for key in stale:
                    del env[key]
            before = [
                use for use in instruction.uses()
                if isinstance(use, Temp) and use in env
            ]
            if before:
                instruction.replace_uses(env)
                changed = True
            for defined in instruction.defs():
                env.pop(defined, None)
                stale = [k for k, v in env.items() if v == defined]
                for key in stale:
                    del env[key]
            if isinstance(instruction, Move) and isinstance(
                instruction.src, Temp
            ):
                if instruction.src is not instruction.dst:
                    env[instruction.dst] = instruction.src
        if block.terminator is not None:
            before = [
                use for use in block.terminator.uses()
                if isinstance(use, Temp) and use in env
            ]
            if before:
                block.terminator.replace_uses(env)
                changed = True
    return changed
