"""Local constant propagation, folding, and algebraic simplification.

Within each basic block, constants are propagated through temps, constant
expressions are folded (using the shared 32-bit semantics in
:mod:`repro.ir.arith`), and a handful of algebraic identities are applied.
Conditional jumps on constants become unconditional jumps, which the CFG
cleanup pass then exploits.
"""

from __future__ import annotations

from repro.ir import arith
from repro.ir.function import IRFunction
from repro.ir.instructions import BinOp, CJump, Jump, Move, UnOp
from repro.ir.values import Const, Operand, Temp


def run(function: IRFunction) -> bool:
    """Run the pass; returns True if anything changed."""
    from repro.analysis.liveness import _is_user_call

    changed = False
    pinned = set(function.pinned_temps)
    for block in function.blocks.values():
        env: dict[Temp, Operand] = {}
        new_instructions = []
        for instruction in block.instructions:
            if pinned and _is_user_call(instruction):
                # The callee may rewrite promoted globals' registers, so
                # constants cached in pinned temps are stale afterwards.
                for temp in pinned:
                    env.pop(temp, None)
            instruction.replace_uses(env)
            replacement = _simplify(function, instruction)
            if replacement is not instruction:
                changed = True
                instruction = replacement
            # Invalidate anything the instruction redefines.
            for defined in instruction.defs():
                env.pop(defined, None)
                # Drop stale copies that referenced the redefined temp.
                stale = [k for k, v in env.items() if v == defined]
                for key in stale:
                    del env[key]
            if isinstance(instruction, Move) and isinstance(
                instruction.src, Const
            ):
                env[instruction.dst] = instruction.src
            new_instructions.append(instruction)
        block.instructions = new_instructions
        if block.terminator is not None:
            block.terminator.replace_uses(env)
            if isinstance(block.terminator, CJump) and isinstance(
                block.terminator.cond, Const
            ):
                taken = (
                    block.terminator.true_target
                    if block.terminator.cond.value != 0
                    else block.terminator.false_target
                )
                block.terminator = Jump(taken)
                changed = True
    return changed


def _simplify(function: IRFunction, instruction):
    """Return a simplified instruction, or the original if unchanged."""
    if isinstance(instruction, BinOp):
        return _simplify_binop(instruction)
    if isinstance(instruction, UnOp) and isinstance(instruction.operand, Const):
        value = arith.eval_unop(instruction.op, instruction.operand.value)
        return Move(instruction.dst, Const(value))
    return instruction


def _simplify_binop(instruction: BinOp):
    lhs, rhs, op = instruction.lhs, instruction.rhs, instruction.op
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        try:
            value = arith.eval_binop(op, lhs.value, rhs.value)
        except arith.DivisionByZeroError:
            return instruction  # preserve the runtime trap
        return Move(instruction.dst, Const(value))
    # Canonicalize constants to the right for commutative operators.
    if isinstance(lhs, Const) and op in arith.COMMUTATIVE_OPS:
        instruction.lhs, instruction.rhs = rhs, lhs
        lhs, rhs = instruction.lhs, instruction.rhs
    if isinstance(rhs, Const):
        value = rhs.value
        if op in ("+", "-", "|", "^", "<<", ">>") and value == 0:
            return Move(instruction.dst, lhs)
        if op in ("*", "/") and value == 1:
            return Move(instruction.dst, lhs)
        if op == "*" and value == 0:
            return Move(instruction.dst, Const(0))
        if op == "&" and value == 0:
            return Move(instruction.dst, Const(0))
        if op == "&" and value == -1:
            return Move(instruction.dst, lhs)
        if op == "%" and value == 1:
            return Move(instruction.dst, Const(0))
    if isinstance(lhs, Const):
        value = lhs.value
        if op == "*" and value == 0:
            return Move(instruction.dst, Const(0))
        if op in ("/", "%") and value == 0 and not _const_is_zero(rhs):
            # 0 / x is 0 unless x might be 0 (keep the potential trap).
            return instruction
    if isinstance(lhs, Temp) and lhs is rhs:
        if op == "-":
            return Move(instruction.dst, Const(0))
        if op == "^":
            return Move(instruction.dst, Const(0))
        if op in ("&", "|"):
            return Move(instruction.dst, lhs)
        if op == "==":
            return Move(instruction.dst, Const(1))
        if op == "!=":
            return Move(instruction.dst, Const(0))
    return instruction


def _const_is_zero(operand: Operand) -> bool:
    return isinstance(operand, Const) and operand.value == 0
