"""Dead-code elimination.

Liveness-driven: an instruction with no side effects whose results are all
dead is removed.  Runs to a local fixpoint (removing one instruction can
kill another), recomputing liveness between sweeps.
"""

from __future__ import annotations

from repro.analysis.liveness import _is_user_call, compute_ir_liveness
from repro.ir.function import IRFunction
from repro.ir.values import Temp


def run(function: IRFunction) -> bool:
    """Run the pass; returns True if anything was removed."""
    removed_any = False
    while _sweep(function):
        removed_any = True
    return removed_any


def _sweep(function: IRFunction) -> bool:
    from repro.ir.instructions import Return

    liveness = compute_ir_liveness(function)
    pinned = set(function.pinned_temps)
    removed = False
    for block in function.blocks.values():
        live: set[Temp] = set(liveness.live_out(block.label))
        if block.terminator is not None:
            for used in block.terminator.uses():
                if isinstance(used, Temp):
                    live.add(used)
            if isinstance(block.terminator, Return):
                # Pinned temps (promoted globals) are observable at return.
                live |= pinned
        kept = []
        for instruction in reversed(block.instructions):
            defs = instruction.defs()
            is_dead = (
                not instruction.has_side_effects
                and defs
                and all(d not in live for d in defs)
            )
            if is_dead:
                removed = True
                continue
            for defined in defs:
                live.discard(defined)
            for used in instruction.uses():
                if isinstance(used, Temp):
                    live.add(used)
            if pinned and _is_user_call(instruction):
                # The callee may read the promoted globals' registers.
                live |= pinned
            kept.append(instruction)
        kept.reverse()
        if len(kept) != len(block.instructions):
            block.instructions = kept
    return removed
