"""Web promotion rewriting (compiler second phase, paper section 5).

For each global promoted in the current procedure (per the program
database):

* every ``LoadGlobal``/``StoreGlobal`` of the global becomes a register
  move to/from a temp pinned to the web's dedicated callee-saves register;
* at *web entry* procedures, the global is loaded from memory into the
  register at the entry point and (when some web procedure modifies it)
  stored back at every exit point;
* everywhere in the web the register is reserved — the analyzer already
  removed it from the procedure's FREE/CALLER/CALLEE/MSPILL sets, and the
  frame finalizer suppresses its save/restore except at entry nodes.

The rewrite runs before the local optimization fixpoint, so the moves it
introduces are cleaned up by copy propagation and DCE.
"""

from __future__ import annotations

from repro.analyzer.database import ProcedureDirectives
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    Call,
    LoadGlobal,
    Move,
    Return,
    StoreGlobal,
)
from repro.ir.values import Temp


def apply_web_promotion(
    function: IRFunction, directives: ProcedureDirectives
) -> bool:
    """Rewrite promoted-global accesses; returns True if anything changed."""
    if not directives.promoted:
        return False
    pinned_for: dict[str, Temp] = {}
    for promoted in directives.promoted:
        temp = function.new_temp(f"web.{promoted.name}")
        function.pinned_temps[temp] = promoted.register
        pinned_for[promoted.name] = temp

    for block in function.blocks.values():
        out = []
        for instruction in block.instructions:
            if (
                isinstance(instruction, LoadGlobal)
                and instruction.symbol in pinned_for
            ):
                out.append(
                    Move(instruction.dst, pinned_for[instruction.symbol])
                )
            elif (
                isinstance(instruction, StoreGlobal)
                and instruction.symbol in pinned_for
            ):
                out.append(
                    Move(pinned_for[instruction.symbol], instruction.src)
                )
            else:
                out.append(instruction)
        block.instructions = out

    # Web entry nodes: load at entry, store back at exits.
    entry_loads = []
    exit_stores = []
    for promoted in directives.promoted:
        if not promoted.is_entry:
            continue
        temp = pinned_for[promoted.name]
        entry_loads.append(LoadGlobal(temp, promoted.name))
        if promoted.needs_store:
            exit_stores.append((promoted.name, temp))
    if entry_loads:
        entry = function.entry
        entry.instructions = entry_loads + entry.instructions
    if exit_stores:
        for block in function.blocks.values():
            if isinstance(block.terminator, Return):
                for name, temp in exit_stores:
                    block.instructions.append(StoreGlobal(name, temp))

    # Split webs (section 7.6.1): around calls that can reach the
    # variable outside this web, write the register back to memory
    # (when the web modifies it) and reload it afterwards.
    wrapped = [
        promoted for promoted in directives.promoted
        if promoted.wrap_callees
    ]
    if wrapped:
        _wrap_external_calls(function, wrapped, pinned_for)
    return True


def _wrap_external_calls(
    function: IRFunction, wrapped: list, pinned_for: dict
) -> None:
    for block in function.blocks.values():
        out = []
        for instruction in block.instructions:
            if (
                isinstance(instruction, Call)
                and not instruction.is_builtin
            ):
                needing = [
                    p for p in wrapped
                    if instruction.callee in p.wrap_callees
                ]
                for promoted in needing:
                    if promoted.needs_store:
                        out.append(
                            StoreGlobal(
                                promoted.name,
                                pinned_for[promoted.name],
                            )
                        )
                out.append(instruction)
                for promoted in needing:
                    out.append(
                        LoadGlobal(
                            pinned_for[promoted.name], promoted.name
                        )
                    )
            else:
                out.append(instruction)
        block.instructions = out
