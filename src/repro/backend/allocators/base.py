"""Allocator strategy interface and registry.

Phase 2's register allocation step is pluggable: a strategy consumes a
:class:`~repro.backend.mir.MachineFunction` fresh out of instruction
selection (virtual registers, directive sets attached, promoted globals
precolored) and must leave it fully physical with
``machine.used_registers`` set — everything after (frame finalization,
validation, emission) is shared.

Three strategies ship in-tree (see ``docs/ALLOCATORS.md``):

* ``paper`` — the directive-driven priority coloring of the source
  paper (:mod:`repro.backend.allocators.paper`); the default.
* ``linearscan`` — an iterative liveness → dead-statement elimination →
  linear scan → spill loop in the shape of the sire compiler
  (SNIPPETS.md Snippet 2), intraprocedural by construction
  (:mod:`repro.backend.allocators.linearscan`).
* ``spill-everywhere`` — every tracked value lives in its stack slot
  and visits registers only between def/use points, the
  Bouchez/Darte/Rastello-style lower bound
  (:mod:`repro.backend.allocators.spilleverywhere`).

Selection mirrors the simulator's ``REPRO_SIM`` knob: pass a name to
:func:`get_allocator` / the driver entry points, or set the
``REPRO_ALLOCATOR`` environment variable; ``None`` falls back to the
environment and then the default.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

#: Allocation strategies selectable via ``REPRO_ALLOCATOR`` or the
#: ``allocator=`` arguments threaded through the driver.
ALLOCATORS = ("paper", "linearscan", "spill-everywhere")
DEFAULT_ALLOCATOR = "paper"


class RegisterAllocationError(Exception):
    """Raised when allocation cannot make progress."""


class AllocatorStrategy(ABC):
    """One register-allocation algorithm.

    Strategies are stateless singletons: ``allocate`` may be called for
    many functions, from many threads of compilation, in any order.
    """

    #: Registry key and user-facing selector name.
    name: str = ""

    @abstractmethod
    def allocate(self, machine) -> None:
        """Allocate registers in place.

        On return every register operand must be physical, spill code
        (if any) inserted, and ``machine.used_registers`` populated —
        the contract :func:`repro.backend.finalize.finalize_frame`
        relies on.
        """


_REGISTRY: dict[str, AllocatorStrategy] = {}


def register_allocator(strategy: AllocatorStrategy) -> AllocatorStrategy:
    """Add a strategy instance to the registry (module import time)."""
    if not strategy.name:
        raise ValueError("allocator strategy must carry a name")
    if strategy.name in _REGISTRY:
        raise ValueError(f"duplicate allocator strategy {strategy.name!r}")
    _REGISTRY[strategy.name] = strategy
    return strategy


def resolve_allocator(name: str | None = None) -> str:
    """Validate an explicit strategy name or fall back to the
    ``REPRO_ALLOCATOR`` environment variable and then the default."""
    name = name or os.environ.get("REPRO_ALLOCATOR") or DEFAULT_ALLOCATOR
    name = name.strip().lower()
    if name not in ALLOCATORS:
        raise ValueError(
            f"unknown allocator strategy {name!r}; expected one of "
            f"{', '.join(ALLOCATORS)}"
        )
    return name


def get_allocator(name: str | None = None) -> AllocatorStrategy:
    """The strategy instance for ``name`` (resolved like
    :func:`resolve_allocator`)."""
    resolved = resolve_allocator(name)
    if resolved not in _REGISTRY:
        # Register the built-in strategies on first use; the package
        # __init__ does this eagerly, but a direct ``base`` import must
        # work too.
        from repro.backend.allocators import (  # noqa: F401
            linearscan,
            paper,
            spilleverywhere,
        )
    return _REGISTRY[resolved]
