"""Pluggable register-allocation strategies for phase 2.

See :mod:`repro.backend.allocators.base` for the strategy contract and
``docs/ALLOCATORS.md`` for the tournament that compares them.
"""

from repro.backend.allocators.base import (
    ALLOCATORS,
    DEFAULT_ALLOCATOR,
    AllocatorStrategy,
    RegisterAllocationError,
    get_allocator,
    register_allocator,
    resolve_allocator,
)

# Importing the strategy modules populates the registry.
from repro.backend.allocators import linearscan  # noqa: E402,F401
from repro.backend.allocators import paper  # noqa: E402,F401
from repro.backend.allocators import spilleverywhere  # noqa: E402,F401

__all__ = [
    "ALLOCATORS",
    "DEFAULT_ALLOCATOR",
    "AllocatorStrategy",
    "RegisterAllocationError",
    "get_allocator",
    "register_allocator",
    "resolve_allocator",
]
