"""Spill-everywhere allocation — the memory-traffic upper bound.

The "spill everywhere" baseline of the SSA spilling literature
(Bouchez/Darte/Rastello, PAPERS.md): every tracked value lives in its
stack slot for its whole lifetime and visits a register only inside a
single instruction — loaded into a scratch register immediately before
each use, stored back immediately after each def.  No liveness, no
pressure model, no iteration; allocation cannot fail as long as three
scratch registers exist (an ALU takes at most two sources and one
destination).

Two refinements keep the output convention-clean rather than merely
runnable:

* scratch registers are drawn from the same convention-bounded
  :func:`~repro.backend.allocators.shared.caller_pool` (minus argument
  registers and RV, which instruction selection addresses directly
  around calls), falling back to callee-saves that the shared frame
  finalizer then saves — never from reserved web registers;
* single-def LDI/LDA constants are rematerialized at each use instead
  of round-tripping through memory, which also keeps web entry-load /
  exit-store base addresses traceable to an LDA for the auditor.

Promoted web values arrive precolored and simply stay in their reserved
registers — the web discipline (entry load, exit store, in-register
lifetime) is part of the promotion contract, not of any one allocator.

Everything else about the pipeline is unchanged, which is the point:
the tournament measures exactly what register *placement* is worth.
"""

from __future__ import annotations

from repro.backend.mir import MachineFunction
from repro.target import isa
from repro.target.frame import FrameLoc
from repro.target.registers import ARG_REGISTERS, RV, SP

from repro.backend.allocators.base import (
    AllocatorStrategy,
    RegisterAllocationError,
    register_allocator,
)
from repro.backend.allocators.shared import caller_pool

#: An instruction reads at most two registers and writes at most one.
_MAX_SCRATCH = 3


class SpillEverywhereAllocator(AllocatorStrategy):
    """Every value in its stack slot; registers only between def/use."""

    name = "spill-everywhere"

    def allocate(self, machine: MachineFunction) -> None:
        remat = _rematerializable_defs(machine)
        remat_defs = {id(ins) for ins in remat.values()}
        slots = self._assign_slots(machine, remat)
        scratch = _scratch_registers(machine)
        used: set[int] = set()
        for block in machine.blocks.values():
            out: list[isa.MInstr] = []
            for instruction in block.instructions:
                # The lone definition of a rematerialized constant is
                # dropped: every use re-derives the value in place.
                if id(instruction) in remat_defs:
                    continue
                self._expand(
                    machine, instruction, slots, remat, scratch, used, out
                )
            block.instructions = out
        machine.used_registers = used | set(machine.precolored.values())

    def _assign_slots(self, machine, remat) -> dict:
        slots: dict[isa.VReg, int] = {}
        for instruction in machine.iter_instructions():
            for value in list(instruction.uses()) + list(
                instruction.defs()
            ):
                if (
                    isinstance(value, isa.VReg)
                    and value not in machine.precolored
                    and value not in remat
                    and value not in slots
                ):
                    slots[value] = machine.num_spills
                    machine.num_spills += 1
        return slots

    def _expand(
        self, machine, instruction, slots, remat, scratch, used, out
    ) -> None:
        uses = [u for u in instruction.uses() if isinstance(u, isa.VReg)]
        defs = [d for d in instruction.defs() if isinstance(d, isa.VReg)]
        mapping: dict[isa.VReg, int] = {}
        next_scratch = 0
        for vreg in uses + defs:
            if vreg in mapping:
                continue
            if vreg in machine.precolored:
                mapping[vreg] = machine.precolored[vreg]
                continue
            if next_scratch >= len(scratch):  # pragma: no cover
                raise RegisterAllocationError(
                    f"{machine.name}: out of scratch registers"
                )
            register = scratch[next_scratch]
            next_scratch += 1
            used.add(register)
            mapping[vreg] = register
            if vreg in uses:
                if vreg in remat:
                    out.append(_clone_def(remat[vreg], register))
                else:
                    out.append(
                        isa.LDW(
                            register,
                            SP,
                            FrameLoc("spill", slots[vreg]),
                            singleton=True,
                        )
                    )
        instruction.rename(mapping)
        out.append(instruction)
        for vreg in defs:
            if vreg in machine.precolored or vreg in remat:
                continue
            out.append(
                isa.STW(
                    mapping[vreg],
                    SP,
                    FrameLoc("spill", slots[vreg]),
                    singleton=True,
                )
            )


register_allocator(SpillEverywhereAllocator())


def _rematerializable_defs(machine: MachineFunction) -> dict:
    """Non-precolored vregs defined exactly once by an LDI/LDA."""
    def_count: dict[isa.VReg, int] = {}
    def_instr: dict[isa.VReg, isa.MInstr] = {}
    for instruction in machine.iter_instructions():
        for defined in instruction.defs():
            if (
                isinstance(defined, isa.VReg)
                and defined not in machine.precolored
            ):
                def_count[defined] = def_count.get(defined, 0) + 1
                def_instr[defined] = instruction
    return {
        vreg: instruction
        for vreg, instruction in def_instr.items()
        if def_count[vreg] == 1
        and isinstance(instruction, (isa.LDI, isa.LDA))
    }


def _clone_def(template: isa.MInstr, target: int) -> isa.MInstr:
    if isinstance(template, isa.LDI):
        return isa.LDI(target, template.imm)
    assert isinstance(template, isa.LDA)
    return isa.LDA(target, template.symbol, template.is_function)


def _scratch_registers(machine: MachineFunction) -> list[int]:
    """Scratch pool: convention-bounded caller-saves minus the argument
    registers and RV (instruction selection names those directly around
    calls and returns), then callee-saves; reserved web registers are in
    neither directive set and precolored registers are filtered out."""
    reserved = set(machine.precolored.values())
    pool = [
        register
        for register in caller_pool(machine)
        if register not in ARG_REGISTERS
        and register != RV
        and register not in reserved
    ]
    pool += [
        register
        for register in sorted(machine.directives.callee)
        if register not in reserved
    ]
    return pool[:_MAX_SCRATCH]
