"""Helpers shared by the allocation strategies.

These are the parts of allocation whose behavior is convention-bound
rather than algorithm-bound: which caller-saves registers a procedure
may legally hand out (sound under caller-saves preallocation), how
spill code is materialized, and the final vreg→register rewrite.  Every
strategy must agree on these or the auditor / runtime convention
checker rejects its output.
"""

from __future__ import annotations

from repro.backend.mir import MachineFunction
from repro.target import isa
from repro.target.frame import FrameLoc
from repro.target.registers import ALL_ALLOCATABLE, SP

from repro.backend.allocators.base import RegisterAllocationError

__all__ = [
    "RegisterAllocationError",
    "caller_pool",
    "insert_spill_code",
    "is_tracked",
    "rewrite",
]


def is_tracked(value) -> bool:
    """Liveness tracks virtual registers and allocatable physical ones."""
    if isinstance(value, isa.VReg):
        return True
    return isinstance(value, int) and value in ALL_ALLOCATABLE


def caller_pool(machine: MachineFunction) -> list[int]:
    """The caller-saves registers this procedure may allocate.

    Without preallocation data this is the directive's CALLER set.  With
    it, standard caller-saves usage is restricted to the analyzer's
    prefix plus the argument registers the procedure demonstrably
    touches (incoming parameters were written by our callers, outgoing
    argument registers are part of our propagated subtree usage) and RV
    — keeping the propagated subtree sets sound upper bounds.  Every
    strategy must respect this bound, not just the paper's colorer: the
    runtime convention checker and the clobber sets other procedures
    compile against assume it.
    """
    from repro.target.registers import ARG_REGISTERS, CALLER_SAVES, RV

    directives = machine.directives
    prefix = getattr(directives, "caller_prefix", None)
    if prefix is None:
        return sorted(directives.caller)
    allowed: list[int] = list(prefix)
    for register in ARG_REGISTERS[: machine.num_params]:
        if register not in allowed:
            allowed.append(register)
    for register in ARG_REGISTERS[: machine.max_outgoing_args]:
        if register not in allowed:
            allowed.append(register)
    if RV not in allowed:
        allowed.append(RV)
    # Non-standard caller registers granted by spill code motion.
    for register in sorted(set(directives.caller) - set(CALLER_SAVES)):
        if register not in allowed:
            allowed.append(register)
    return allowed


def _rematerializable(machine: MachineFunction, spills: list) -> dict:
    """Spilled vregs defined exactly once by an LDI/LDA.

    Their value is a constant (immediate or symbol address), so a use
    can re-derive it in place instead of round-tripping through a stack
    slot.  Beyond saving memory traffic, this keeps web entry-load /
    exit-store base addresses traceable to an LDA for the auditor.
    Returns ``{vreg: defining instruction}``.
    """
    spill_set = set(spills)
    def_count: dict[isa.VReg, int] = {}
    def_instr: dict[isa.VReg, isa.MInstr] = {}
    for instruction in machine.iter_instructions():
        for defined in instruction.defs():
            if isinstance(defined, isa.VReg) and defined in spill_set:
                def_count[defined] = def_count.get(defined, 0) + 1
                def_instr[defined] = instruction
    return {
        vreg: instruction
        for vreg, instruction in def_instr.items()
        if def_count[vreg] == 1
        and isinstance(instruction, (isa.LDI, isa.LDA))
    }


def _clone_def(template: isa.MInstr, target: isa.VReg) -> isa.MInstr:
    if isinstance(template, isa.LDI):
        return isa.LDI(target, template.imm)
    assert isinstance(template, isa.LDA)
    return isa.LDA(target, template.symbol, template.is_function)


def insert_spill_code(
    machine: MachineFunction, spills: list, rematerialize: bool = False
) -> None:
    """Demote ``spills`` to frame slots: loads before uses, stores after
    defs, all tagged singleton (register spill traffic is scalar).

    With ``rematerialize`` enabled, single-def LDI/LDA values get no
    slot at all — each use re-emits the defining instruction into the
    spill temp and the now-dead definition is left for the next round's
    dead-statement elimination.  The ``paper`` strategy keeps this off
    to stay byte-identical with its pre-refactor output.
    """
    remat = _rematerializable(machine, spills) if rematerialize else {}
    slots = {}
    for vreg in spills:
        if vreg in remat:
            continue
        slots[vreg] = machine.num_spills
        machine.num_spills += 1
    spill_set = set(spills)
    for block in machine.blocks.values():
        out: list[isa.MInstr] = []
        for instruction in block.instructions:
            touched = [
                v
                for v in set(
                    list(instruction.uses()) + list(instruction.defs())
                )
                if isinstance(v, isa.VReg) and v in spill_set
            ]
            if not touched:
                out.append(instruction)
                continue
            mapping = {}
            for vreg in touched:
                mapping[vreg] = machine.new_vreg(f"!spill.{vreg.uid}")
            uses = set(instruction.uses())
            defs = set(instruction.defs())
            for vreg in touched:
                if vreg in uses:
                    if vreg in remat:
                        out.append(_clone_def(remat[vreg], mapping[vreg]))
                    else:
                        out.append(
                            isa.LDW(
                                mapping[vreg],
                                SP,
                                FrameLoc("spill", slots[vreg]),
                                singleton=True,
                            )
                        )
            instruction.rename(mapping)
            out.append(instruction)
            for vreg in touched:
                if vreg in defs and vreg not in remat:
                    out.append(
                        isa.STW(
                            mapping[vreg],
                            SP,
                            FrameLoc("spill", slots[vreg]),
                            singleton=True,
                        )
                    )
        block.instructions = out


def rewrite(machine: MachineFunction, assignment: dict) -> None:
    """Substitute the final assignment and drop moves coalesced by
    identical coloring."""
    for block in machine.blocks.values():
        out = []
        for instruction in block.instructions:
            instruction.rename(assignment)
            if (
                isinstance(instruction, isa.MOV)
                and isinstance(instruction.rd, int)
                and instruction.rd == instruction.rs
            ):
                continue
            out.append(instruction)
        block.instructions = out
