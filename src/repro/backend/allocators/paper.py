"""Graph-coloring register allocation honoring interprocedural directives.

A priority-based colorer in the Chow-Hennessy tradition (the paper's
compilers use priority-based coloring):

* liveness runs over virtual *and* physical registers, so argument
  registers, RV, and call clobbers constrain allocation naturally;
* each call instruction *defines* its clobber set — the registers the
  analyzer says the callee may destroy (``CALLER ∪ MSPILL``), which is
  how values live across calls are steered away from them;
* virtual registers live across a call may only receive **FREE** (no
  save/restore, preserved across calls thanks to spill code motion) or
  **CALLEE** registers (save/restore added at entry/exit);
* other virtual registers prefer **CALLER**, then **MSPILL** (spilled at
  cluster roots on our behalf), then FREE/CALLEE;
* registers reserved for promoted global webs appear in no pool; the
  promoted values themselves arrive as precolored vregs.

Uncolorable vregs are spilled to frame slots (loads before uses, stores
after defs — all tagged singleton, since register spill traffic is scalar)
and allocation reruns.

This is the ``paper`` strategy — the default, and the configuration the
source paper measures.  Moved here verbatim from
``repro.backend.regalloc`` (which remains as a compatibility shim); the
regression suite pins its output byte-identical to the pre-refactor
allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.liveness import compute_liveness
from repro.backend.mir import MachineFunction
from repro.target import isa

from repro.backend.allocators.base import (
    AllocatorStrategy,
    RegisterAllocationError,
    register_allocator,
)
from repro.backend.allocators.shared import (
    caller_pool,
    insert_spill_code,
    is_tracked,
    rewrite,
)

_MAX_ROUNDS = 24


@dataclass
class _NodeInfo:
    vreg: isa.VReg
    neighbors: set = field(default_factory=set)  # other vregs
    forbidden: set = field(default_factory=set)  # physical registers
    cost: float = 0.0
    live_across_call: bool = False
    is_spill_temp: bool = False
    # Move partners, for move-biased coloring: vregs this one is copied
    # to/from, and physical registers likewise.
    move_vregs: set = field(default_factory=set)
    move_physical: set = field(default_factory=set)


def allocate_function(machine: MachineFunction) -> None:
    """Allocate registers in place; sets ``machine.used_registers``."""
    spilled_ever: set = set()
    for _ in range(_MAX_ROUNDS):
        nodes = _build_interference(machine)
        assignment, spills = _color(machine, nodes)
        if not spills:
            rewrite(machine, assignment)
            used = set(assignment.values()) | set(
                machine.precolored.values()
            )
            machine.used_registers = used
            return
        for vreg in spills:
            if vreg in spilled_ever:  # pragma: no cover - defensive
                raise RegisterAllocationError(
                    f"{machine.name}: vreg {vreg} spilled twice"
                )
            spilled_ever.add(vreg)
        insert_spill_code(machine, spills)
    raise RegisterAllocationError(  # pragma: no cover - defensive
        f"{machine.name}: register allocation did not converge"
    )


class PaperAllocator(AllocatorStrategy):
    """The directive-driven priority colorer of the source paper."""

    name = "paper"

    def allocate(self, machine: MachineFunction) -> None:
        allocate_function(machine)


register_allocator(PaperAllocator())


# ---------------------------------------------------------------------------
# Interference construction
# ---------------------------------------------------------------------------


def _build_interference(machine: MachineFunction) -> dict:
    liveness = compute_liveness(
        machine.blocks.keys(),
        lambda label: machine.blocks[label].successors(),
        lambda label: machine.blocks[label].instructions,
        is_tracked,
    )
    nodes: dict[isa.VReg, _NodeInfo] = {}

    def node(vreg: isa.VReg) -> _NodeInfo:
        if vreg not in nodes:
            info = _NodeInfo(vreg)
            info.is_spill_temp = vreg.hint.startswith("!spill")
            nodes[vreg] = info
        return nodes[vreg]

    # Ensure every vreg has a node even if dead, and record move pairs
    # for move-biased coloring.
    for instruction in machine.iter_instructions():
        for value in list(instruction.uses()) + list(instruction.defs()):
            if isinstance(value, isa.VReg):
                node(value)
        if isinstance(instruction, isa.MOV):
            dst, src = instruction.rd, instruction.rs
            if isinstance(dst, isa.VReg) and isinstance(src, isa.VReg):
                node(dst).move_vregs.add(src)
                node(src).move_vregs.add(dst)
            elif isinstance(dst, isa.VReg) and isinstance(src, int):
                node(dst).move_physical.add(src)
            elif isinstance(src, isa.VReg) and isinstance(dst, int):
                node(src).move_physical.add(dst)

    for label, block in machine.blocks.items():
        weight = 10 ** min(block.loop_depth, 6)
        live = set(liveness.live_out(label))
        for instruction in reversed(block.instructions):
            defs = [d for d in instruction.defs() if is_tracked(d)]
            uses = [u for u in instruction.uses() if is_tracked(u)]
            move_source = (
                instruction.rs
                if isinstance(instruction, isa.MOV)
                else None
            )
            for defined in defs:
                for other in live:
                    if other is defined or other is move_source:
                        continue
                    _add_edge(node, defined, other)
            if instruction.is_call:
                for value in live:
                    if isinstance(value, isa.VReg) and value not in defs:
                        node(value).live_across_call = True
            for defined in defs:
                live.discard(defined)
                if isinstance(defined, isa.VReg):
                    node(defined).cost += weight
            for used in uses:
                live.add(used)
                if isinstance(used, isa.VReg):
                    node(used).cost += weight
    return nodes


def _add_edge(node_of, a, b) -> None:
    a_virtual = isinstance(a, isa.VReg)
    b_virtual = isinstance(b, isa.VReg)
    if a_virtual and b_virtual:
        node_of(a).neighbors.add(b)
        node_of(b).neighbors.add(a)
    elif a_virtual and not b_virtual:
        node_of(a).forbidden.add(b)
    elif b_virtual and not a_virtual:
        node_of(b).forbidden.add(a)


# ---------------------------------------------------------------------------
# Coloring
# ---------------------------------------------------------------------------


def _pools(machine: MachineFunction) -> tuple[list[int], list[int]]:
    directives = machine.directives
    free = sorted(directives.free)
    callee = sorted(directives.callee)
    mspill = sorted(directives.mspill)
    caller = caller_pool(machine)
    # Values live across calls may also take caller-saves registers: the
    # per-call-site clobber interference (BL defines its clobber set)
    # rules out every unsafe choice, and with caller-saves preallocation
    # (section 7.6.2) some caller registers genuinely survive specific
    # calls.  FREE first (guaranteed, no save/restore), then caller
    # (no save/restore, call-dependent), then CALLEE (save/restore).
    across_pool = free + caller + callee
    normal_pool = caller + mspill + free + callee
    return across_pool, normal_pool


def _color(machine: MachineFunction, nodes: dict) -> tuple[dict, list]:
    across_pool, normal_pool = _pools(machine)
    assignment: dict[isa.VReg, int] = dict(machine.precolored)
    spills: list[isa.VReg] = []
    order = sorted(
        (info for vreg, info in nodes.items() if vreg not in assignment),
        key=lambda info: (-info.cost, info.vreg.uid),
    )
    for info in order:
        taken = set(info.forbidden)
        for neighbor in info.neighbors:
            if neighbor in assignment:
                taken.add(assignment[neighbor])
        pool = across_pool if info.live_across_call else normal_pool
        # Move-biased choice: a move partner's register (when legal and
        # in the pool) coalesces the copy away at rewrite time.
        preferred = set(info.move_physical)
        for partner in info.move_vregs:
            if partner in assignment:
                preferred.add(assignment[partner])
        chosen = next(
            (r for r in pool if r in preferred and r not in taken), None
        )
        if chosen is None:
            chosen = next((r for r in pool if r not in taken), None)
        if chosen is None:
            if info.is_spill_temp:  # pragma: no cover - defensive
                raise RegisterAllocationError(
                    f"{machine.name}: cannot color spill temp {info.vreg}"
                )
            spills.append(info.vreg)
        else:
            assignment[info.vreg] = chosen
    return assignment, spills
