"""Iterative linear-scan register allocation — the intraprocedural baseline.

Shaped after the sire compiler's allocator (SNIPPETS.md Snippet 2):
each round computes liveness, eliminates dead statements, then sweeps
coarse live intervals in one linear pass; values the sweep cannot place
are spilled to frame slots (or rematerialized, for single-def LDI/LDA
constants) and the round repeats until no spills remain.

The strategy is deliberately *intraprocedural*: it allocates only from
the caller-saves pool the convention grants this procedure (the same
:func:`~repro.backend.allocators.shared.caller_pool` bound every
strategy must respect) plus the callee-saves set, and ignores the
analyzer's interprocedural FREE/MSPILL gifts entirely.  Call-clobber
safety falls out of liveness, not analysis: every BL/BLR *defines* its
clobber set, so those physical registers occupy the call position and
any interval spanning it is steered elsewhere.

Intervals are coarse — one ``[first, last]`` position span per vreg
over the emission-order linearization, a sound over-approximation of
exact liveness.  Two values live at the same position therefore always
have overlapping intervals and never share a register; the cost is
extra pressure (holes are not reused), which is part of what the
allocator tournament measures against the paper's colorer.
"""

from __future__ import annotations

from repro.analysis.liveness import compute_liveness
from repro.backend.mir import MachineFunction
from repro.target import isa

from repro.backend.allocators.base import (
    AllocatorStrategy,
    RegisterAllocationError,
    register_allocator,
)
from repro.backend.allocators.shared import (
    caller_pool,
    insert_spill_code,
    is_tracked,
    rewrite,
)

_MAX_ROUNDS = 48

# Instructions with no side effect beyond their register result; a dead
# definition by one of these may be deleted.  Division and modulus stay:
# a zero divisor faults, and dead-code elimination must not change
# whether a program faults.  Loads stay too — a dead load may still trap
# on a wild address.
_PURE = (isa.LDI, isa.LDA, isa.MOV, isa.ALU, isa.ALUI, isa.CMP)
_TRAPPING_OPS = ("/", "%")


class LinearScanAllocator(AllocatorStrategy):
    """Liveness → dead-statement elimination → linear scan → spill,
    iterated to fixpoint."""

    name = "linearscan"

    def allocate(self, machine: MachineFunction) -> None:
        spilled_ever: set = set()
        for _ in range(_MAX_ROUNDS):
            eliminate_dead_statements(machine)
            intervals, blocked = build_intervals(machine)
            assignment, spills = scan(machine, intervals, blocked)
            if not spills:
                rewrite(machine, assignment)
                machine.used_registers = set(assignment.values()) | set(
                    machine.precolored.values()
                )
                return
            for vreg in spills:
                if vreg in spilled_ever:  # pragma: no cover - defensive
                    raise RegisterAllocationError(
                        f"{machine.name}: vreg {vreg} spilled twice"
                    )
                spilled_ever.add(vreg)
            insert_spill_code(machine, spills, rematerialize=True)
        raise RegisterAllocationError(  # pragma: no cover - defensive
            f"{machine.name}: linear scan did not converge"
        )


register_allocator(LinearScanAllocator())


def allocation_pool(machine: MachineFunction) -> list[int]:
    """Caller-saves (convention-bounded) first, then callee-saves.

    No FREE, no MSPILL: those pools exist only because the analyzer
    looked across procedure boundaries, which this baseline pointedly
    does not.
    """
    return caller_pool(machine) + sorted(machine.directives.callee)


# ---------------------------------------------------------------------------
# Dead-statement elimination
# ---------------------------------------------------------------------------


def eliminate_dead_statements(machine: MachineFunction) -> int:
    """Delete pure instructions whose virtual results are never read.

    Spilling splits a value into per-use temporaries, routinely leaving
    the original definition dead; rematerialized constants always do.
    Runs to its own fixpoint; returns the number of deletions.
    """
    total = 0
    while True:
        liveness = compute_liveness(
            machine.blocks.keys(),
            lambda label: machine.blocks[label].successors(),
            lambda label: machine.blocks[label].instructions,
            lambda value: isinstance(value, isa.VReg),
        )
        removed = 0
        for label, block in machine.blocks.items():
            live = set(liveness.live_out(label))
            kept: list[isa.MInstr] = []
            for instruction in reversed(block.instructions):
                defs = instruction.defs()
                if _removable(machine, instruction, defs, live):
                    removed += 1
                    continue
                for defined in defs:
                    live.discard(defined)
                for used in instruction.uses():
                    if isinstance(used, isa.VReg):
                        live.add(used)
                kept.append(instruction)
            kept.reverse()
            block.instructions = kept
        if not removed:
            return total
        total += removed


def _removable(machine, instruction, defs, live) -> bool:
    if not isinstance(instruction, _PURE):
        return False
    if (
        isinstance(instruction, (isa.ALU, isa.ALUI))
        and instruction.op in _TRAPPING_OPS
    ):
        return False
    for defined in defs:
        if not isinstance(defined, isa.VReg):
            return False  # writes to a physical register are ABI-visible
        if defined in machine.precolored or defined in live:
            return False
    return bool(defs)


# ---------------------------------------------------------------------------
# Interval construction
# ---------------------------------------------------------------------------


def build_intervals(machine: MachineFunction):
    """Coarse live intervals plus per-position physical-occupancy masks.

    Positions number instructions in emission (layout) order.  At each
    position the *occupied* set is ``uses ∪ defs ∪ live-out``; a vreg's
    interval spans its first to last occupied position, physical
    registers (including precolored web registers, call clobbers, and
    argument/RV traffic) contribute a bitmask blocking that position.

    Returns ``(intervals, blocked)`` where intervals is a list of
    ``(start, end, vreg)`` sorted by start and blocked is the
    per-position mask list.
    """
    liveness = compute_liveness(
        machine.blocks.keys(),
        lambda label: machine.blocks[label].successors(),
        lambda label: machine.blocks[label].instructions,
        is_tracked,
    )
    starts: dict[isa.VReg, int] = {}
    ends: dict[isa.VReg, int] = {}
    blocked: list[int] = []
    position = 0
    for block in machine.layout_order():
        count = len(block.instructions)
        occupied: list[set] = [set()] * count
        live = set(liveness.live_out(block.label))
        for index in range(count - 1, -1, -1):
            instruction = block.instructions[index]
            defs = [d for d in instruction.defs() if is_tracked(d)]
            uses = [u for u in instruction.uses() if is_tracked(u)]
            occupied[index] = set(live) | set(defs) | set(uses)
            for defined in defs:
                live.discard(defined)
            for used in uses:
                live.add(used)
        for index in range(count):
            mask = 0
            for value in occupied[index]:
                if isinstance(value, isa.VReg):
                    if value in machine.precolored:
                        mask |= 1 << machine.precolored[value]
                    else:
                        starts.setdefault(value, position)
                        ends[value] = position
                else:
                    mask |= 1 << value
            blocked.append(mask)
            position += 1
    intervals = sorted(
        ((starts[vreg], ends[vreg], vreg) for vreg in starts),
        key=lambda item: (item[0], item[1], item[2].uid),
    )
    return intervals, blocked


class _RangeOr:
    """O(1) bitwise-OR over position ranges (doubling sparse table)."""

    def __init__(self, masks: list[int]):
        self.rows = [list(masks)]
        length = len(masks)
        width = 2
        while width <= length:
            prev = self.rows[-1]
            half = width // 2
            self.rows.append(
                [prev[i] | prev[i + half] for i in range(length - width + 1)]
            )
            width *= 2

    def query(self, lo: int, hi: int) -> int:
        """OR of masks[lo..hi], inclusive."""
        level = (hi - lo + 1).bit_length() - 1
        row = self.rows[level]
        return row[lo] | row[hi - (1 << level) + 1]


# ---------------------------------------------------------------------------
# The scan
# ---------------------------------------------------------------------------


def scan(machine: MachineFunction, intervals, blocked):
    """One linear sweep; returns ``(assignment, spills)``.

    Walks intervals by start position, retiring expired ones and
    assigning the first pool register neither held by an overlapping
    interval nor blocked anywhere in the candidate's span.  When no
    register fits, the furthest-ending eligible interval (current
    included, spill temporaries excluded) is chosen for spilling —
    freeing the longest stretch of future positions.
    """
    pool = allocation_pool(machine)
    table = _RangeOr(blocked)
    assignment: dict[isa.VReg, int] = dict(machine.precolored)
    spills: list[isa.VReg] = []
    active: list[tuple[int, int, isa.VReg]] = []  # (end, register, vreg)
    for start, end, vreg in intervals:
        active = [entry for entry in active if entry[0] >= start]
        forbid = table.query(start, end)
        taken = forbid
        for _, register, _ in active:
            taken |= 1 << register
        chosen = next((r for r in pool if not (taken >> r) & 1), None)
        if chosen is None:
            is_temp = vreg.hint.startswith("!spill")
            candidates = [
                entry
                for entry in active
                if not entry[2].hint.startswith("!spill")
                and not (forbid >> entry[1]) & 1
            ]
            if not is_temp:
                candidates.append((end, -1, vreg))
            if not candidates:  # pragma: no cover - defensive
                raise RegisterAllocationError(
                    f"{machine.name}: cannot place spill temp {vreg}"
                )
            victim = max(
                candidates, key=lambda entry: (entry[0], entry[2].uid)
            )
            spills.append(victim[2])
            if victim[2] is vreg:
                continue  # current loses; scan on
            active.remove(victim)
            del assignment[victim[2]]
            chosen = victim[1]
        assignment[vreg] = chosen
        active.append((end, chosen, vreg))
    return assignment, spills
