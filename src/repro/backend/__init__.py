"""Compiler second phase: IR + program database -> object modules."""

from repro.backend.allocators import (
    ALLOCATORS,
    AllocatorStrategy,
    RegisterAllocationError,
    get_allocator,
    resolve_allocator,
)
from repro.backend.allocators.paper import allocate_function
from repro.backend.finalize import finalize_frame
from repro.backend.isel import select_function
from repro.backend.mir import MachineBlock, MachineFunction
from repro.backend.object import ObjectFunction, ObjectModule, emit_function
from repro.backend.phase2 import compile_module_phase2
from repro.backend.promotion import apply_web_promotion

__all__ = [
    "ALLOCATORS",
    "AllocatorStrategy",
    "get_allocator",
    "resolve_allocator",
    "MachineBlock",
    "MachineFunction",
    "ObjectFunction",
    "ObjectModule",
    "RegisterAllocationError",
    "allocate_function",
    "apply_web_promotion",
    "compile_module_phase2",
    "emit_function",
    "finalize_frame",
    "select_function",
]
