"""Machine IR: PRISM instructions organized in basic blocks.

Between instruction selection and emission, a procedure is a
:class:`MachineFunction` — labelled blocks of :class:`~repro.target.isa`
instructions with explicit control flow (every block ends with branches
and/or falls through to nothing; there is no implicit fallthrough until
final layout).
"""

from __future__ import annotations

from typing import Iterator

from repro.analyzer.database import ProcedureDirectives
from repro.target.isa import B, BC, MInstr, RET, VReg


class MachineBlock:
    """One machine basic block."""

    def __init__(self, label: str, loop_depth: int = 0):
        self.label = label
        self.instructions: list[MInstr] = []
        self.loop_depth = loop_depth

    def append(self, instruction: MInstr) -> None:
        self.instructions.append(instruction)

    def successors(self) -> list[str]:
        """Branch targets of the block's control-flow tail."""
        targets: list[str] = []
        for instruction in self.instructions:
            targets.extend(instruction.successors())
        return targets

    def __repr__(self) -> str:
        return f"<mblock {self.label}: {len(self.instructions)} instrs>"


class MachineFunction:
    """A procedure in machine form."""

    def __init__(
        self,
        name: str,
        directives: ProcedureDirectives,
        return_type: str = "int",
        source_module: str = "",
    ):
        self.name = name
        self.directives = directives
        self.return_type = return_type
        self.source_module = source_module
        self.blocks: dict[str, MachineBlock] = {}
        self.entry_label = "entry"
        self.exit_label = "exit"
        self.slot_sizes: list[int] = []
        self.makes_calls = False
        self.max_outgoing_args = 0
        self.num_params = 0
        self.num_spills = 0
        self.saved_registers: list[int] = []
        # VReg -> physical register for pinned values (promoted globals).
        self.precolored: dict[VReg, int] = {}
        # Physical registers in use after allocation.
        self.used_registers: set[int] = set()
        self._next_vreg = 0

    def new_vreg(self, hint: str = "") -> VReg:
        self._next_vreg += 1
        return VReg(self._next_vreg, hint)

    def add_block(self, label: str, loop_depth: int = 0) -> MachineBlock:
        if label in self.blocks:
            raise ValueError(f"duplicate machine block {label!r}")
        block = MachineBlock(label, loop_depth)
        self.blocks[label] = block
        return block

    @property
    def entry(self) -> MachineBlock:
        return self.blocks[self.entry_label]

    @property
    def exit(self) -> MachineBlock:
        return self.blocks[self.exit_label]

    def iter_instructions(self) -> Iterator[MInstr]:
        for block in self.blocks.values():
            yield from block.instructions

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {label: [] for label in self.blocks}
        for block in self.blocks.values():
            for successor in block.successors():
                preds[successor].append(block.label)
        return preds

    def layout_order(self) -> list[MachineBlock]:
        """Emission order: entry first, exit last, others in between."""
        order = [self.blocks[self.entry_label]]
        for label, block in self.blocks.items():
            if label not in (self.entry_label, self.exit_label):
                order.append(block)
        if self.exit_label in self.blocks and self.exit_label != self.entry_label:
            order.append(self.blocks[self.exit_label])
        return order

    def format(self) -> str:
        lines = [f"mfunc {self.name}:"]
        for block in self.layout_order():
            lines.append(f"  {block.label}:")
            for instruction in block.instructions:
                lines.append(f"    {instruction!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<mfunc {self.name}: {len(self.blocks)} blocks>"


def validate_machine_function(function: MachineFunction) -> None:
    """Sanity checks: branch targets exist, exit block returns."""
    for block in function.blocks.values():
        for instruction in block.instructions:
            for target in instruction.successors():
                if target not in function.blocks:
                    raise ValueError(
                        f"{function.name}/{block.label}: branch to unknown "
                        f"label {target!r}"
                    )
        seen_control_flow = False
        for instruction in block.instructions:
            if isinstance(instruction, (B, BC, RET)):
                seen_control_flow = True
            elif seen_control_flow:
                raise ValueError(
                    f"{function.name}/{block.label}: instruction "
                    f"{instruction!r} after control flow"
                )
