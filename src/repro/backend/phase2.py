"""Compiler second phase (paper section 5).

Consumes the intermediate representation produced by the first phase plus
the program database produced by the analyzer, and produces an object
module:

1. apply web promotion rewrites from the database,
2. re-run the local optimization fixpoint to clean up,
3. instruction selection against the PRISM target,
4. register allocation under the directive sets — by default the
   paper's graph colorer, selectable per compilation via the
   :mod:`repro.backend.allocators` strategy registry,
5. frame finalization (spill code placement per CALLEE/MSPILL/web rules),
6. emission to an object module.

Because all interprocedural decisions live in the database, modules can be
compiled independently and in any order.
"""

from __future__ import annotations

from repro.analyzer.database import ProgramDatabase
from repro.backend.allocators import get_allocator
from repro.backend.finalize import finalize_frame
from repro.backend.isel import select_function
from repro.backend.mir import validate_machine_function
from repro.backend.object import ObjectModule, emit_module
from repro.backend.promotion import apply_web_promotion
from repro.ir.module import IRModule
from repro.opt.pipeline import _local_fixpoint


def module_directive_names(module: IRModule) -> frozenset:
    """Names whose directives can influence this module's phase 2.

    Phase 2 consults the database for (a) every procedure the module
    defines — promotion rewrites and the allocator's usage sets — and
    (b) every direct callee, whose ``caller_prefix`` /
    ``subtree_caller_used`` shape the clobber sets at call sites.
    Intra-module callees are already covered by (a); indirect calls
    assume the full convention and never consult the database.  The
    incremental driver digests exactly this set to decide whether a new
    program database requires recompiling the module.
    """
    return frozenset(module.functions) | frozenset(module.extern_functions)


def compile_module_phase2(
    module: IRModule,
    database: ProgramDatabase,
    opt_level: int = 2,
    allocator: str | None = None,
) -> ObjectModule:
    """Translate one IR module to an object module.

    ``allocator`` names a registered allocation strategy (``paper``,
    ``linearscan``, ``spill-everywhere``); ``None`` defers to the
    ``REPRO_ALLOCATOR`` environment variable and then the default.
    """
    strategy = get_allocator(allocator)
    machine_functions = []
    for function in module.functions.values():
        directives = database.get(function.name)
        changed = apply_web_promotion(function, directives)
        if changed and opt_level >= 1:
            _local_fixpoint(function)
        machine = select_function(function, directives, database)
        strategy.allocate(machine)
        finalize_frame(machine)
        validate_machine_function(machine)
        machine_functions.append(machine)
    return emit_module(
        module.name,
        machine_functions,
        list(module.globals.values()),
        module.extern_globals,
        module.extern_functions,
    )
