"""Frame finalization: prologue/epilogue insertion and offset resolution.

Runs after register allocation, when the spill count and the set of
registers needing save/restore are finally known.  This is where the
paper's spill-code placement rules become actual instructions:

* **CALLEE** registers are saved/restored only if used (standard
  convention);
* **MSPILL** registers are saved/restored unconditionally at cluster
  roots — the root executes the spill code on behalf of the whole
  cluster (section 4.2.3);
* registers holding promoted globals are saved/restored only at *web
  entry* procedures; everywhere else in the web the save/restore is
  suppressed (section 5);
* RP is saved iff the procedure makes calls.
"""

from __future__ import annotations

from repro.backend.mir import MachineFunction
from repro.target import isa
from repro.target.frame import FrameLayout, FrameLoc
from repro.target.registers import RP, SP


def finalize_frame(machine: MachineFunction) -> FrameLayout:
    """Insert prologue/epilogue and resolve symbolic frame offsets."""
    directives = machine.directives
    saved = set(machine.used_registers) & set(directives.callee)
    if directives.is_cluster_root:
        saved |= set(directives.mspill)
    else:
        saved |= set(machine.used_registers) & set(directives.mspill)
    for promoted in directives.promoted:
        if promoted.is_entry:
            saved.add(promoted.register)
        else:
            saved.discard(promoted.register)

    layout = FrameLayout(
        slot_sizes=machine.slot_sizes,
        num_spills=machine.num_spills,
        saved_registers=sorted(saved),
        save_rp=machine.makes_calls,
        max_outgoing_args=machine.max_outgoing_args,
    )
    machine.saved_registers = sorted(saved)

    prologue: list[isa.MInstr] = []
    if layout.frame_size > 0:
        prologue.append(isa.ALUI("-", SP, SP, layout.frame_size))
    if machine.makes_calls:
        prologue.append(
            isa.STW(RP, SP, FrameLoc("saved_rp"), singleton=True,
                    save_restore=True)
        )
    for register in sorted(saved):
        prologue.append(
            isa.STW(register, SP, FrameLoc("saved_reg", register),
                    singleton=True, save_restore=True)
        )

    epilogue: list[isa.MInstr] = []
    for register in sorted(saved):
        epilogue.append(
            isa.LDW(register, SP, FrameLoc("saved_reg", register),
                    singleton=True, save_restore=True)
        )
    if machine.makes_calls:
        epilogue.append(
            isa.LDW(RP, SP, FrameLoc("saved_rp"), singleton=True,
                    save_restore=True)
        )
    if layout.frame_size > 0:
        epilogue.append(isa.ALUI("+", SP, SP, layout.frame_size))

    entry = machine.entry
    entry.instructions = prologue + entry.instructions
    exit_block = machine.exit
    ret_index = next(
        i
        for i, instruction in enumerate(exit_block.instructions)
        if isinstance(instruction, isa.RET)
    )
    exit_block.instructions = (
        exit_block.instructions[:ret_index]
        + epilogue
        + exit_block.instructions[ret_index:]
    )

    _resolve_offsets(machine, layout)
    return layout


def _resolve_offsets(machine: MachineFunction, layout: FrameLayout) -> None:
    for block in machine.blocks.values():
        for instruction in block.instructions:
            if isinstance(instruction, (isa.LDW, isa.STW)) and isinstance(
                instruction.offset, FrameLoc
            ):
                instruction.offset = layout.resolve(instruction.offset)
            elif isinstance(instruction, isa.ALUI) and isinstance(
                instruction.imm, FrameLoc
            ):
                instruction.imm = layout.resolve(instruction.imm)
