"""Instruction selection: IR -> PRISM machine IR.

Selection is mostly one-to-one, with a few pattern optimizations that
materially affect the paper's cycle metrics:

* **compare-and-branch fusion** — a comparison whose only use is the
  block's conditional jump becomes a single ``BC`` (PA-RISC ``COMB``);
* **immediate forms** — ALU operations with a constant operand use
  ``ALUI``;
* **per-block address/constant caching** — repeated ``LDA`` of the same
  symbol or ``LDI`` of the same constant within a block reuse one vreg
  (the "base register set up" the paper's section 6.2 talks about).

Calling convention: the first four arguments travel in r4-r7, the rest in
the caller's outgoing-overflow frame area; the result returns in RV.
The clobber set attached to each call comes from the procedure's register
usage directives: ``CALLER ∪ MSPILL ∪ {RV, RP}`` (section 4.2.3 semantics
— FREE and CALLEE registers are preserved across calls).
"""

from __future__ import annotations

from repro.analyzer.database import ProcedureDirectives
from repro.backend.mir import MachineBlock, MachineFunction
from repro.ir import arith
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    BinOp,
    Call,
    CallIndirect,
    CJump,
    FrameAddr,
    Jump,
    Load,
    LoadAddr,
    LoadGlobal,
    Move,
    Return,
    Store,
    StoreGlobal,
    UnOp,
)
from repro.ir.values import Const, Operand, Temp
from repro.target import isa
from repro.target.frame import FrameLoc
from repro.target.registers import (
    ARG_REGISTERS,
    MAX_REG_ARGS,
    RP,
    RV,
    SP,
    ZERO,
)

_ALUI_OPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}


class InstructionSelector:
    """Translates one IR function to machine IR.

    When a program database is supplied and carries caller-saves
    preallocation data (section 7.6.2), direct calls get *per-callee*
    clobber sets — the callee subtree's actual caller-saves usage —
    instead of the full caller-saves convention.
    """

    def __init__(self, function: IRFunction, directives: ProcedureDirectives,
                 database=None):
        self._ir = function
        self._database = database
        self.machine = MachineFunction(
            function.name,
            directives,
            function.return_type,
            function.source_module,
        )
        self.machine.num_params = len(function.params)
        self._temp_regs: dict[Temp, isa.VReg] = {}
        self._slot_index = {
            id(slot): index for index, slot in enumerate(function.frame_slots)
        }
        self.machine.slot_sizes = [
            slot.size_words for slot in function.frame_slots
        ]
        self._use_counts = _count_temp_uses(function)
        self._call_clobbers = sorted(
            set(directives.caller) | set(directives.mspill) | {RV, RP}
        )
        # Registers every call clobbers regardless of callee: the spill
        # motion machinery's non-standard caller registers plus MSPILL.
        from repro.target.registers import CALLER_SAVES

        self._clobber_floor = (
            (set(directives.caller) - set(CALLER_SAVES))
            | set(directives.mspill)
            | {RV, RP}
        )
        # Per-block caches, reset at each block boundary.
        self._const_cache: dict[int, isa.VReg] = {}
        self._symbol_cache: dict[tuple, isa.VReg] = {}
        self._pending_compare: dict[Temp, tuple] = {}
        self._block: MachineBlock | None = None
        pinned = getattr(function, "pinned_temps", {})
        self._pinned: dict[Temp, isa.VReg] = {}
        for temp, register in pinned.items():
            vreg = self.machine.new_vreg(f"pin.{temp.hint or temp.uid}")
            self.machine.precolored[vreg] = register
            self._pinned[temp] = vreg

    # -- plumbing ---------------------------------------------------------

    def _emit(self, instruction: isa.MInstr) -> None:
        assert self._block is not None
        self._block.append(instruction)

    def _reg_of_temp(self, temp: Temp) -> isa.VReg:
        if temp in self._pinned:
            return self._pinned[temp]
        if temp not in self._temp_regs:
            self._temp_regs[temp] = self.machine.new_vreg(temp.hint)
        return self._temp_regs[temp]

    def _reg_of(self, operand: Operand) -> isa.Reg:
        """Materialize an operand into a register."""
        if isinstance(operand, Const):
            if operand.value == 0:
                return ZERO
            if operand.value in self._const_cache:
                return self._const_cache[operand.value]
            vreg = self.machine.new_vreg()
            self._emit(isa.LDI(vreg, operand.value))
            self._const_cache[operand.value] = vreg
            return vreg
        return self._reg_of_temp(operand)

    def _address_of_symbol(self, symbol: str, is_function: bool) -> isa.Reg:
        key = (symbol, is_function)
        if key in self._symbol_cache:
            return self._symbol_cache[key]
        vreg = self.machine.new_vreg()
        self._emit(isa.LDA(vreg, symbol, is_function))
        self._symbol_cache[key] = vreg
        return vreg

    def _invalidate_block_caches(self) -> None:
        self._const_cache = {}
        self._symbol_cache = {}
        self._pending_compare = {}

    # -- driver ---------------------------------------------------------

    def select(self) -> MachineFunction:
        for ir_block in self._ir.block_order():
            label = ir_block.label
            self.machine.add_block(label, ir_block.loop_depth)
        exit_block = self.machine.add_block(self.machine.exit_label)
        self._select_body()
        live_out = [RV] if self._ir.return_type != "void" else []
        exit_block.append(isa.RET(live_out))
        return self.machine

    def _select_body(self) -> None:
        for ir_block in self._ir.block_order():
            self._block = self.machine.blocks[ir_block.label]
            self._invalidate_block_caches()
            if ir_block.label == self._ir.entry_label:
                self._emit_parameter_moves()
            branch_only = self._branch_only_compares(ir_block)
            for instruction in ir_block.instructions:
                if (
                    isinstance(instruction, BinOp)
                    and instruction.dst in branch_only
                ):
                    ra = self._reg_of(instruction.lhs)
                    rb = self._reg_of(instruction.rhs)
                    self._pending_compare[instruction.dst] = (
                        instruction.op,
                        ra,
                        rb,
                    )
                    continue
                self._select_instruction(instruction)
            self._select_terminator(ir_block)

    def _branch_only_compares(self, ir_block) -> set[Temp]:
        """Comparison temps used exactly once, by this block's CJump."""
        terminator = ir_block.terminator
        if not isinstance(terminator, CJump):
            return set()
        cond = terminator.cond
        if not isinstance(cond, Temp) or self._use_counts.get(cond, 0) != 1:
            return set()
        compare_index = None
        for index, instruction in enumerate(ir_block.instructions):
            if (
                isinstance(instruction, BinOp)
                and instruction.dst is cond
                and instruction.op in arith.COMPARISON_OPS
            ):
                compare_index = index
        if compare_index is None:
            return set()
        # Fusing defers the comparison to the branch, so its operands must
        # not be redefined between the compare and the block end.
        compare = ir_block.instructions[compare_index]
        operand_temps = {
            operand for operand in (compare.lhs, compare.rhs)
            if isinstance(operand, Temp)
        }
        pinned_operands = operand_temps & set(self._ir.pinned_temps)
        for instruction in ir_block.instructions[compare_index + 1:]:
            for defined in instruction.defs():
                if defined in operand_temps or defined is cond:
                    return set()
            if pinned_operands and isinstance(
                instruction, (Call, CallIndirect)
            ):
                if not (isinstance(instruction, Call)
                        and instruction.is_builtin):
                    # A call may rewrite the promoted global's register.
                    return set()
        return {cond}

    def _emit_parameter_moves(self) -> None:
        for index, param in enumerate(self._ir.params):
            vreg = self._reg_of_temp(param)
            if index < MAX_REG_ARGS:
                self._emit(isa.MOV(vreg, ARG_REGISTERS[index]))
            else:
                self._emit(
                    isa.LDW(vreg, SP, FrameLoc("incoming", index),
                            singleton=True)
                )

    # -- instructions ---------------------------------------------------

    def _select_instruction(self, instruction) -> None:
        if isinstance(instruction, Move):
            self._select_move(instruction)
        elif isinstance(instruction, BinOp):
            self._select_binop(instruction)
        elif isinstance(instruction, UnOp):
            self._select_unop(instruction)
        elif isinstance(instruction, LoadGlobal):
            base = self._address_of_symbol(instruction.symbol, False)
            self._emit(
                isa.LDW(self._reg_of_temp(instruction.dst), base, 0,
                        singleton=True)
            )
        elif isinstance(instruction, StoreGlobal):
            base = self._address_of_symbol(instruction.symbol, False)
            self._emit(
                isa.STW(self._reg_of(instruction.src), base, 0,
                        singleton=True)
            )
        elif isinstance(instruction, LoadAddr):
            source = self._address_of_symbol(
                instruction.symbol, instruction.is_function
            )
            self._emit(isa.MOV(self._reg_of_temp(instruction.dst), source))
        elif isinstance(instruction, FrameAddr):
            index = self._slot_index[id(instruction.slot)]
            self._emit(
                isa.ALUI(
                    "+",
                    self._reg_of_temp(instruction.dst),
                    SP,
                    FrameLoc("slot", index),
                )
            )
        elif isinstance(instruction, Load):
            self._emit(
                isa.LDW(
                    self._reg_of_temp(instruction.dst),
                    self._reg_of(instruction.addr),
                    instruction.offset,
                    instruction.singleton,
                )
            )
        elif isinstance(instruction, Store):
            self._emit(
                isa.STW(
                    self._reg_of(instruction.src),
                    self._reg_of(instruction.addr),
                    instruction.offset,
                    instruction.singleton,
                )
            )
        elif isinstance(instruction, Call):
            self._select_call(instruction)
        elif isinstance(instruction, CallIndirect):
            self._select_call_indirect(instruction)
        else:  # pragma: no cover
            raise TypeError(f"cannot select {instruction!r}")

    def _select_move(self, instruction: Move) -> None:
        dst = self._reg_of_temp(instruction.dst)
        if isinstance(instruction.src, Const):
            self._emit(isa.LDI(dst, instruction.src.value))
        else:
            self._emit(isa.MOV(dst, self._reg_of_temp(instruction.src)))
        # dst is redefined; any cached const/symbol living in it is fine
        # (caches hold their own vregs), but a pending compare using dst
        # would now read the wrong value — those are same-block only and
        # consumed by the terminator, so redefinition cannot intervene
        # (each temp is defined once per block by construction).

    def _select_binop(self, instruction: BinOp) -> None:
        dst = self._reg_of_temp(instruction.dst)
        op, lhs, rhs = instruction.op, instruction.lhs, instruction.rhs
        if op in arith.COMPARISON_OPS:
            self._emit(
                isa.CMP(op, dst, self._reg_of(lhs), self._reg_of(rhs))
            )
            return
        if isinstance(rhs, Const) and op in _ALUI_OPS:
            self._emit(isa.ALUI(op, dst, self._reg_of(lhs), rhs.value))
            return
        if (
            isinstance(lhs, Const)
            and op in arith.COMMUTATIVE_OPS
            and op in _ALUI_OPS
        ):
            self._emit(isa.ALUI(op, dst, self._reg_of(rhs), lhs.value))
            return
        self._emit(isa.ALU(op, dst, self._reg_of(lhs), self._reg_of(rhs)))

    def _select_unop(self, instruction: UnOp) -> None:
        dst = self._reg_of_temp(instruction.dst)
        operand = self._reg_of(instruction.operand)
        if instruction.op == "-":
            self._emit(isa.ALU("-", dst, ZERO, operand))
        elif instruction.op == "~":
            self._emit(isa.ALUI("^", dst, operand, -1))
        elif instruction.op == "!":
            self._emit(isa.CMP("==", dst, operand, ZERO))
        else:  # pragma: no cover
            raise ValueError(f"unknown unary op {instruction.op!r}")

    def _select_call_common(self, args: list[Operand]) -> list[int]:
        """Evaluate arguments and move them into place; returns the
        physical argument registers used."""
        regs = [self._reg_of(arg) for arg in args]
        used: list[int] = []
        for index, reg in enumerate(regs):
            if index < MAX_REG_ARGS:
                target = ARG_REGISTERS[index]
                self._emit(isa.MOV(target, reg))
                used.append(target)
            else:
                self._emit(
                    isa.STW(reg, SP, FrameLoc("outgoing", index),
                            singleton=True)
                )
        self.machine.makes_calls = True
        self.machine.max_outgoing_args = max(
            self.machine.max_outgoing_args, len(args)
        )
        return used

    def _after_call(self, dst: Temp | None) -> None:
        # Re-materializing constants/addresses after a call is cheaper than
        # keeping them alive across it (they would need callee-saves homes).
        # Deferred compare-and-branch state survives: vreg values are not
        # changed by calls, only the rematerialization caches are dropped.
        self._const_cache = {}
        self._symbol_cache = {}
        if dst is not None:
            self._emit(isa.MOV(self._reg_of_temp(dst), RV))

    def _clobbers_for_callee(self, callee: str) -> list:
        if self._database is None:
            return list(self._call_clobbers)
        callee_directives = self._database.get(callee)
        if callee_directives.caller_prefix is None:
            # No preallocation data: assume the full convention.
            return list(self._call_clobbers)
        return sorted(
            set(callee_directives.subtree_caller_used)
            | self._clobber_floor
        )

    def _select_call(self, instruction: Call) -> None:
        if instruction.is_builtin:
            reg = self._reg_of(instruction.args[0])
            self._emit(isa.SYS(instruction.callee, reg))
            return
        used = self._select_call_common(instruction.args)
        self._emit(
            isa.BL(
                instruction.callee,
                used,
                self._clobbers_for_callee(instruction.callee),
            )
        )
        self._after_call(instruction.dst)

    def _select_call_indirect(self, instruction: CallIndirect) -> None:
        target = self._reg_of(instruction.target)
        used = self._select_call_common(instruction.args)
        self._emit(
            isa.BLR(target, used, list(self._call_clobbers))
        )
        self._after_call(instruction.dst)

    # -- terminators ------------------------------------------------------

    def _select_terminator(self, ir_block) -> None:
        terminator = ir_block.terminator
        if isinstance(terminator, Jump):
            self._emit(isa.B(terminator.target))
        elif isinstance(terminator, CJump):
            self._select_cjump(terminator)
        elif isinstance(terminator, Return):
            if terminator.value is not None:
                if isinstance(terminator.value, Const):
                    self._emit(isa.LDI(RV, terminator.value.value))
                else:
                    self._emit(
                        isa.MOV(RV, self._reg_of_temp(terminator.value))
                    )
            self._emit(isa.B(self.machine.exit_label))
        else:  # pragma: no cover
            raise TypeError(f"cannot select terminator {terminator!r}")

    def _select_cjump(self, terminator: CJump) -> None:
        cond = terminator.cond
        if isinstance(cond, Const):
            taken = (
                terminator.true_target
                if cond.value != 0
                else terminator.false_target
            )
            self._emit(isa.B(taken))
            return
        if cond in self._pending_compare:
            op, ra, rb = self._pending_compare.pop(cond)
            self._emit(isa.BC(op, ra, rb, terminator.true_target))
        else:
            self._emit(
                isa.BC("!=", self._reg_of_temp(cond), ZERO,
                       terminator.true_target)
            )
        self._emit(isa.B(terminator.false_target))


def _count_temp_uses(function: IRFunction) -> dict[Temp, int]:
    counts: dict[Temp, int] = {}
    for block in function.blocks.values():
        items = list(block.instructions)
        if block.terminator is not None:
            items.append(block.terminator)
        for instruction in items:
            for used in instruction.uses():
                if isinstance(used, Temp):
                    counts[used] = counts.get(used, 0) + 1
    return counts


def select_function(
    function: IRFunction,
    directives: ProcedureDirectives,
    database=None,
) -> MachineFunction:
    """Run instruction selection on one IR function."""
    return InstructionSelector(function, directives, database).select()
