"""Compatibility shim — allocation now lives in
:mod:`repro.backend.allocators`.

The graph-coloring allocator this module used to implement moved
verbatim to :mod:`repro.backend.allocators.paper` when allocation grew
a strategy interface (paper / linearscan / spill-everywhere; see
``docs/ALLOCATORS.md``).  The historical entry points are re-exported
here for existing imports.
"""

from repro.backend.allocators.base import RegisterAllocationError
from repro.backend.allocators.paper import allocate_function

__all__ = ["RegisterAllocationError", "allocate_function"]
