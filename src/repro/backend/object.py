"""Object files: the compiler second phase's output, the linker's input.

An :class:`ObjectFunction` is a flat instruction list with function-local
branch targets already resolved to instruction indices (stored as ints in
the ``target`` fields).  Symbolic references that cross functions or
modules — ``LDA`` symbols and ``BL`` callees — are left for the linker.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.backend.mir import MachineFunction
from repro.ir.module import GlobalVar
from repro.target import isa


@dataclass
class ObjectFunction:
    """One compiled procedure."""

    name: str
    instructions: list = field(default_factory=list)
    source_module: str = ""

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class ObjectModule:
    """One compiled compilation unit."""

    name: str
    functions: list = field(default_factory=list)
    globals: list = field(default_factory=list)
    extern_globals: set = field(default_factory=set)
    extern_functions: set = field(default_factory=set)


def emit_function(machine: MachineFunction) -> ObjectFunction:
    """Flatten machine blocks into a linear instruction stream.

    Layout follows :meth:`MachineFunction.layout_order`.  Branches to the
    next block in layout are elided; a ``BC`` whose fallthrough ``B``
    can be removed by inverting the condition is inverted.
    """
    from repro.ir.arith import NEGATED_COMPARISON

    order = machine.layout_order()
    next_of: dict[str, str | None] = {}
    for index, block in enumerate(order):
        next_of[block.label] = (
            order[index + 1].label if index + 1 < len(order) else None
        )

    flat: list = []
    label_offsets: dict[str, int] = {}
    for block in order:
        label_offsets[block.label] = len(flat)
        instructions = block.instructions
        i = 0
        while i < len(instructions):
            instruction = instructions[i]
            following = instructions[i + 1] if i + 1 < len(instructions) else None
            if (
                isinstance(instruction, isa.B)
                and following is None
                and instruction.target == next_of[block.label]
            ):
                i += 1
                continue  # fallthrough
            if (
                isinstance(instruction, isa.BC)
                and isinstance(following, isa.B)
                and i + 2 == len(instructions)
            ):
                if instruction.target == next_of[block.label]:
                    # Invert: branch away on the negated condition.
                    inverted = isa.BC(
                        NEGATED_COMPARISON[instruction.op],
                        instruction.ra,
                        instruction.rb,
                        following.target,
                    )
                    flat.append(inverted)
                    i += 2
                    continue
                if following.target == next_of[block.label]:
                    flat.append(copy.copy(instruction))
                    i += 2
                    continue
            flat.append(copy.copy(instruction))
            i += 1

    # Resolve local branch targets to instruction indices.
    for instruction in flat:
        if isinstance(instruction, (isa.B, isa.BC)):
            instruction.target = label_offsets[instruction.target]
    return ObjectFunction(machine.name, flat, machine.source_module)


def emit_module(
    name: str,
    machine_functions: list,
    global_vars: list,
    extern_globals: set,
    extern_functions: set,
) -> ObjectModule:
    """Emit a whole module."""
    return ObjectModule(
        name=name,
        functions=[emit_function(m) for m in machine_functions],
        globals=list(global_vars),
        extern_globals=set(extern_globals),
        extern_functions=set(extern_functions),
    )
