"""fgrep-style text pattern matching.

Searches a corpus of text lines (synthesized deterministically into a
global buffer) for several fixed patterns, in the style of fgrep: an
outer line loop, an inner match loop, and a handful of very hot global
scalars (cursor, counters, current-line state) that dominate the
singleton memory references — the reason the paper's fgrep shows a 67%
singleton reduction under promotion.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register

_GEN = """
// fgrep module 1: deterministic corpus generation.
int text[40000];
int text_len;
int line_starts[600];
int line_count;
int seed = 314159;

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 32767;
}

int gen_word(int pos) {
  // Append a pseudo-random word at pos; returns the new position.
  int len = 2 + next_rand() % 6;
  int i;
  for (i = 0; i < len; i++) {
    text[pos] = 'a' + next_rand() % 26;
    pos++;
  }
  return pos;
}

int build_corpus() {
  int pos = 0;
  int line, words, w;
  line_count = 0;
  for (line = 0; line < 420; line++) {
    line_starts[line_count] = pos;
    line_count++;
    words = 3 + next_rand() % 8;
    for (w = 0; w < words; w++) {
      pos = gen_word(pos);
      if (w + 1 < words) {
        text[pos] = ' ';
        pos++;
      }
    }
    // Plant the needle in some lines so matches exist.
    if (line % 17 == 3) {
      text[pos] = ' '; pos++;
      text[pos] = 'n'; pos++;
      text[pos] = 'e'; pos++;
      text[pos] = 'e'; pos++;
      text[pos] = 'd'; pos++;
      text[pos] = 'l'; pos++;
      text[pos] = 'e'; pos++;
    }
    text[pos] = 10;  // newline
    pos++;
  }
  text[pos] = 0;
  text_len = pos;
  return pos;
}
"""

_MATCH = """
// fgrep module 2: the matcher.
extern int text[];
extern int text_len;
extern int line_starts[];
extern int line_count;

int match_count;
int lines_matched;
int chars_scanned;
int comparisons;

int match_at(int *pat, int pos) {
  // Does pat (NUL-terminated) match text starting at pos?
  int i = 0;
  while (pat[i]) {
    comparisons++;
    if (text[pos + i] != pat[i])
      return 0;
    i++;
  }
  return 1;
}

int search_line(int *pat, int start) {
  // Scan one line; returns number of matches in the line.
  int hits = 0;
  int pos = start;
  while (text[pos] != 10 && text[pos] != 0) {
    chars_scanned++;
    if (text[pos] == pat[0]) {
      if (match_at(pat, pos))
        hits++;
    }
    pos++;
  }
  return hits;
}

int grep(int *pat) {
  // fgrep over the whole corpus; returns total matches.
  int line;
  int total = 0;
  for (line = 0; line < line_count; line++) {
    int hits = search_line(pat, line_starts[line]);
    if (hits) {
      lines_matched++;
      match_count = match_count + hits;
      total += hits;
    }
  }
  return total;
}
"""

_MAIN = """
// fgrep module 3: driver.
extern int build_corpus();
extern int grep(int *);
extern int match_count;
extern int lines_matched;
extern int chars_scanned;
extern int comparisons;

int pat_needle[] = "needle";
int pat_the[] = "th";
int pat_ee[] = "ee";
int pat_zq[] = "zq";

int main() {
  int n;
  build_corpus();
  n = grep(pat_needle);
  print(n);
  n = grep(pat_ee);
  print(n);
  n = grep(pat_the);
  print(n);
  n = grep(pat_zq);
  print(n);
  print(match_count);
  print(lines_matched);
  print(chars_scanned);
  print(comparisons);
  return match_count & 255;
}
"""

WORKLOAD = register(
    Workload(
        name="fgrep",
        description="Text pattern matching tool (fgrep-style)",
        sources={"fgrep_gen": _GEN, "fgrep_match": _MATCH, "fgrep_main": _MAIN},
        paper_counterpart="Fgrep",
        paper_lines=460,
    )
)
