"""PA Opt counterpart: a large optimizer, optimizing synthetic programs.

The paper's biggest benchmark is the PA-RISC optimizer running over
Othello: a large, many-module program with hundreds of global variables
whose usage is *localized* — each optimization phase leans on its own
cluster of global counters and cursors.  That locality is exactly what
web-based promotion exploits and blanket promotion cannot (only the six
hottest globals get blanket registers; the paper measures 13.9% singleton
reduction for web coloring vs 0.8% for blanket on PA Opt).

This counterpart is a miniature optimizer with the same shape: a linear
IR, a CFG pass, constant folding, copy propagation, dead-code
elimination, local CSE, a peephole pass, a linear-scan register
allocator, and a statistics module — ten modules and dozens of global
variables.  In the style of large 1980s C programs, each pass keeps its
working state (cursors, accumulators, scratch operands) in file-scope
globals rather than locals, so every module contributes its own family
of hot promotable globals.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register

_IR = """
// paopt module 1: linear IR + synthetic program generator.
// ops: 0 nop, 1 const, 2 add, 3 sub, 4 mul, 5 copy, 6 load, 7 store,
//      8 cmp, 9 branch, 10 label, 11 ret
int ir_op[3000];
int ir_dst[3000];
int ir_a[3000];
int ir_b[3000];
int ir_count;
int ir_temps;
int gen_seed;
int gen_cursor;
int gen_kind;
int gen_blocks;

int ir_rand() {
  gen_seed = gen_seed * 1103515245 + 12345;
  return (gen_seed >> 16) & 32767;
}

int ir_emit(int op, int dst, int a, int b) {
  ir_op[ir_count] = op;
  ir_dst[ir_count] = dst;
  ir_a[ir_count] = a;
  ir_b[ir_count] = b;
  ir_count++;
  return ir_count - 1;
}

int ir_new_temp() {
  ir_temps++;
  return ir_temps;
}

int gen_basic_block(int n) {
  // Emit n instructions mixing arithmetic, copies, and memory ops.
  for (gen_cursor = 0; gen_cursor < n; gen_cursor++) {
    int t = ir_new_temp();
    gen_kind = ir_rand() % 10;
    if (gen_kind < 2) ir_emit(1, t, ir_rand() % 100, 0);
    else if (gen_kind < 4) ir_emit(2, t, 1 + ir_rand() % ir_temps,
                                   1 + ir_rand() % ir_temps);
    else if (gen_kind < 5) ir_emit(3, t, 1 + ir_rand() % ir_temps,
                                   1 + ir_rand() % ir_temps);
    else if (gen_kind < 6) ir_emit(4, t, 1 + ir_rand() % ir_temps,
                                   1 + ir_rand() % ir_temps);
    else if (gen_kind < 8) ir_emit(5, t, 1 + ir_rand() % ir_temps, 0);
    else if (gen_kind < 9) ir_emit(6, t, ir_rand() % 64, 0);
    else ir_emit(7, 0, ir_rand() % 64, 1 + ir_rand() % ir_temps);
  }
  return n;
}

int gen_function(int variant) {
  int b;
  gen_seed = 1299709 + variant * 7919;
  ir_count = 0;
  ir_temps = 0;
  gen_blocks = 4 + ir_rand() % 5;
  for (b = 0; b < gen_blocks; b++) {
    ir_emit(10, b, 0, 0);                 // label
    gen_basic_block(12 + ir_rand() % 20);
    if (b + 1 < gen_blocks)
      ir_emit(9, 0, ir_rand() % gen_blocks, 0);  // branch
  }
  ir_emit(11, 0, 0, 0);
  return ir_count;
}
"""

_CFG = """
// paopt module 2: basic block discovery.
extern int ir_op[];
extern int ir_count;

int block_start[200];
int block_end[200];
int block_count;
int edges_found;
int cfg_passes;
int cfg_pos;
int cfg_current;

int find_blocks() {
  block_count = 0;
  cfg_current = -1;
  for (cfg_pos = 0; cfg_pos < ir_count; cfg_pos++) {
    int op = ir_op[cfg_pos];
    if (op == 10) {
      if (cfg_current >= 0)
        block_end[cfg_current] = cfg_pos;
      cfg_current = block_count;
      block_start[cfg_current] = cfg_pos;
      block_count++;
    } else if (op == 9 || op == 11) {
      if (cfg_current >= 0) {
        block_end[cfg_current] = cfg_pos + 1;
        cfg_current = -1;
      }
      if (op == 9)
        edges_found++;
    }
  }
  cfg_passes++;
  return block_count;
}
"""

_FOLD = """
// paopt module 3: constant folding.
// Working state is file-scope, 1980s style: the cursor, the operand
// scratch values, and the per-pass change counter are all globals.
extern int ir_temps;
extern int ir_op[];
extern int ir_dst[];
extern int ir_a[];
extern int ir_b[];
extern int ir_count;

int const_value[4000];
int is_const[4000];
int folds_done;
int fold_passes;
int fold_pos;
int fold_changed;
int fold_lhs;
int fold_rhs;

int fold_value(int op) {
  if (op == 2) return fold_lhs + fold_rhs;
  if (op == 3) return fold_lhs - fold_rhs;
  return fold_lhs * fold_rhs;
}

int fold_clear() {
  for (fold_pos = 0; fold_pos <= ir_temps; fold_pos++)
    is_const[fold_pos] = 0;
  return 0;
}

int fold_pass() {
  fold_changed = 0;
  fold_clear();
  for (fold_pos = 0; fold_pos < ir_count; fold_pos++) {
    int op = ir_op[fold_pos];
    if (op == 1) {
      is_const[ir_dst[fold_pos]] = 1;
      const_value[ir_dst[fold_pos]] = ir_a[fold_pos];
    } else if (op == 2 || op == 3 || op == 4) {
      if (is_const[ir_a[fold_pos]] && is_const[ir_b[fold_pos]]) {
        fold_lhs = const_value[ir_a[fold_pos]];
        fold_rhs = const_value[ir_b[fold_pos]];
        ir_op[fold_pos] = 1;
        ir_a[fold_pos] = fold_value(op);
        ir_b[fold_pos] = 0;
        is_const[ir_dst[fold_pos]] = 1;
        const_value[ir_dst[fold_pos]] = ir_a[fold_pos];
        folds_done++;
        fold_changed++;
      } else {
        is_const[ir_dst[fold_pos]] = 0;
      }
    } else if (op == 5) {
      if (is_const[ir_a[fold_pos]]) {
        ir_op[fold_pos] = 1;
        ir_a[fold_pos] = const_value[ir_a[fold_pos]];
        is_const[ir_dst[fold_pos]] = 1;
        const_value[ir_dst[fold_pos]] = ir_a[fold_pos];
        folds_done++;
        fold_changed++;
      } else {
        is_const[ir_dst[fold_pos]] = 0;
      }
    } else if (ir_dst[fold_pos] > 0) {
      is_const[ir_dst[fold_pos]] = 0;
    }
  }
  fold_passes++;
  return fold_changed;
}
"""

_COPY = """
// paopt module 4: copy propagation.
extern int ir_temps;
extern int ir_op[];
extern int ir_dst[];
extern int ir_a[];
extern int ir_b[];
extern int ir_count;

int copy_of[4000];
int copies_propagated;
int copy_passes;
int copy_pos;
int copy_changed;
int copy_root;

int resolve(int t) {
  while (copy_of[t])
    t = copy_of[t];
  return t;
}

int copy_clear() {
  for (copy_pos = 0; copy_pos <= ir_temps; copy_pos++)
    copy_of[copy_pos] = 0;
  return 0;
}

int copyprop_pass() {
  copy_changed = 0;
  copy_clear();
  for (copy_pos = 0; copy_pos < ir_count; copy_pos++) {
    int op = ir_op[copy_pos];
    if (op == 2 || op == 3 || op == 4 || op == 8) {
      copy_root = resolve(ir_a[copy_pos]);
      if (copy_root != ir_a[copy_pos]) {
        ir_a[copy_pos] = copy_root;
        copy_changed++;
        copies_propagated++;
      }
      copy_root = resolve(ir_b[copy_pos]);
      if (copy_root != ir_b[copy_pos]) {
        ir_b[copy_pos] = copy_root;
        copy_changed++;
        copies_propagated++;
      }
    } else if (op == 7) {
      copy_root = resolve(ir_b[copy_pos]);
      if (copy_root != ir_b[copy_pos]) {
        ir_b[copy_pos] = copy_root;
        copy_changed++;
        copies_propagated++;
      }
    }
    if (op == 5) {
      copy_root = resolve(ir_a[copy_pos]);
      // Guard against copy chains that resolve back to the destination
      // (e.g. "copy t, t"), which would create a resolve() cycle.
      if (copy_root != ir_dst[copy_pos])
        copy_of[ir_dst[copy_pos]] = copy_root;
      else
        copy_of[ir_dst[copy_pos]] = 0;
    } else if (ir_dst[copy_pos] > 0) {
      copy_of[ir_dst[copy_pos]] = 0;
    }
  }
  copy_passes++;
  return copy_changed;
}
"""

_DCE = """
// paopt module 5: dead code elimination.
extern int ir_temps;
extern int ir_op[];
extern int ir_dst[];
extern int ir_a[];
extern int ir_b[];
extern int ir_count;

int live_temp[4000];
int dce_removed;
int dce_passes;
int dce_pos;
int dce_changed;

int dce_mark_uses(int op) {
  if (op == 2 || op == 3 || op == 4 || op == 8) {
    live_temp[ir_a[dce_pos]] = 1;
    live_temp[ir_b[dce_pos]] = 1;
  } else if (op == 5) {
    live_temp[ir_a[dce_pos]] = 1;
  } else if (op == 7) {
    live_temp[ir_b[dce_pos]] = 1;
  }
  return 0;
}

int dce_pass() {
  dce_changed = 0;
  for (dce_pos = 0; dce_pos <= ir_temps; dce_pos++)
    live_temp[dce_pos] = 0;
  // Stores, branches, and returns are roots; walk backwards.
  for (dce_pos = ir_count - 1; dce_pos >= 0; dce_pos--) {
    int op = ir_op[dce_pos];
    int needed = 0;
    if (op == 7 || op == 9 || op == 10 || op == 11 || op == 0)
      needed = 1;
    else if (ir_dst[dce_pos] > 0 && live_temp[ir_dst[dce_pos]])
      needed = 1;
    if (needed) {
      dce_mark_uses(op);
    } else if (op != 0) {
      ir_op[dce_pos] = 0;  // nop it out
      dce_removed++;
      dce_changed++;
    }
  }
  dce_passes++;
  return dce_changed;
}
"""

_CSE = """
// paopt module 6: local common subexpression elimination.
extern int ir_op[];
extern int ir_dst[];
extern int ir_a[];
extern int ir_b[];
extern int ir_count;

int cse_table_key[512];
int cse_table_result[512];
int cse_hits;
int cse_probes;
int cse_passes;
int cse_pos;
int cse_changed;
int cse_slot;
int cse_sig;

int cse_hash(int op, int a, int b) {
  return ((op * 31 + a) * 31 + b) & 511;
}

int cse_invalidate() {
  int j;
  for (j = 0; j < 512; j++)
    cse_table_key[j] = -1;
  return 0;
}

int cse_pass() {
  cse_changed = 0;
  cse_invalidate();
  for (cse_pos = 0; cse_pos < ir_count; cse_pos++) {
    int op = ir_op[cse_pos];
    if (op == 2 || op == 3 || op == 4) {
      cse_sig = op * 100000000 + ir_a[cse_pos] * 10000 + ir_b[cse_pos];
      cse_slot = cse_hash(op, ir_a[cse_pos], ir_b[cse_pos]);
      cse_probes++;
      if (cse_table_key[cse_slot] == cse_sig) {
        // Replace with a copy of the previous result.
        ir_op[cse_pos] = 5;
        ir_a[cse_pos] = cse_table_result[cse_slot];
        ir_b[cse_pos] = 0;
        cse_hits++;
        cse_changed++;
      } else {
        cse_table_key[cse_slot] = cse_sig;
        cse_table_result[cse_slot] = ir_dst[cse_pos];
      }
    } else if (op == 10 || op == 9) {
      cse_invalidate();  // block boundary
    }
  }
  cse_passes++;
  return cse_changed;
}
"""

_PEEP = """
// paopt module 7: peephole pass.
extern int ir_op[];
extern int ir_dst[];
extern int ir_a[];
extern int ir_b[];
extern int ir_count;

int peeps_applied;
int peep_passes;
int peep_pos;
int peep_changed;

int peephole_pass() {
  peep_changed = 0;
  for (peep_pos = 0; peep_pos < ir_count; peep_pos++) {
    int op = ir_op[peep_pos];
    // x - x => const 0
    if (op == 3 && ir_a[peep_pos] == ir_b[peep_pos]) {
      ir_op[peep_pos] = 1;
      ir_a[peep_pos] = 0;
      ir_b[peep_pos] = 0;
      peeps_applied++;
      peep_changed++;
    }
    // copy t, t => nop
    if (op == 5 && ir_dst[peep_pos] == ir_a[peep_pos]) {
      ir_op[peep_pos] = 0;
      peeps_applied++;
      peep_changed++;
    }
  }
  peep_passes++;
  return peep_changed;
}
"""

_RA = """
// paopt module 8: linear-scan register allocation.
extern int ir_op[];
extern int ir_dst[];
extern int ir_a[];
extern int ir_b[];
extern int ir_count;
extern int ir_temps;

int last_use[4000];
int assigned_reg[4000];
int reg_free_at[32];
int ra_spills;
int ra_assigned;
int ra_passes;
int ra_pos;
int ra_reg;

int ra_note_use(int t) {
  last_use[t] = ra_pos;
  return t;
}

int compute_last_uses() {
  for (ra_pos = 0; ra_pos <= ir_temps; ra_pos++)
    last_use[ra_pos] = -1;
  for (ra_pos = 0; ra_pos < ir_count; ra_pos++) {
    int op = ir_op[ra_pos];
    if (op == 2 || op == 3 || op == 4 || op == 8) {
      ra_note_use(ir_a[ra_pos]);
      ra_note_use(ir_b[ra_pos]);
    } else if (op == 5) {
      ra_note_use(ir_a[ra_pos]);
    } else if (op == 7) {
      ra_note_use(ir_b[ra_pos]);
    }
  }
  return ir_temps;
}

int allocate_registers() {
  compute_last_uses();
  for (ra_reg = 0; ra_reg < 32; ra_reg++)
    reg_free_at[ra_reg] = 0;
  for (ra_pos = 0; ra_pos <= ir_temps; ra_pos++)
    assigned_reg[ra_pos] = -1;
  for (ra_pos = 0; ra_pos < ir_count; ra_pos++) {
    int t = ir_dst[ra_pos];
    int op = ir_op[ra_pos];
    if (op == 0 || op == 7 || op == 9 || op == 10 || op == 11)
      continue;
    if (t <= 0 || last_use[t] < 0)
      continue;
    for (ra_reg = 0; ra_reg < 32; ra_reg++) {
      if (reg_free_at[ra_reg] <= ra_pos) {
        assigned_reg[t] = ra_reg;
        reg_free_at[ra_reg] = last_use[t];
        ra_assigned++;
        break;
      }
    }
    if (assigned_reg[t] < 0)
      ra_spills++;
  }
  ra_passes++;
  return ra_assigned;
}
"""

_STATS = """
// paopt module 9: statistics aggregation.
extern int folds_done;
extern int copies_propagated;
extern int dce_removed;
extern int cse_hits;
extern int peeps_applied;
extern int ra_spills;
extern int ra_assigned;
extern int edges_found;
extern int block_count;

int total_folds;
int total_copies;
int total_dce;
int total_cse;
int total_peeps;
int total_spills;
int total_assigned;
int total_blocks;
int functions_optimized;

int accumulate() {
  total_folds = folds_done;
  total_copies = copies_propagated;
  total_dce = dce_removed;
  total_cse = cse_hits;
  total_peeps = peeps_applied;
  total_spills = ra_spills;
  total_assigned = ra_assigned;
  total_blocks = total_blocks + block_count;
  functions_optimized++;
  return functions_optimized;
}

int report() {
  print(functions_optimized);
  print(total_blocks);
  print(total_folds);
  print(total_copies);
  print(total_dce);
  print(total_cse);
  print(total_peeps);
  print(total_assigned);
  print(total_spills);
  return 0;
}
"""

_MAIN = """
// paopt module 10: the optimization driver.
extern int gen_function(int);
extern int find_blocks();
extern int fold_pass();
extern int copyprop_pass();
extern int dce_pass();
extern int cse_pass();
extern int peephole_pass();
extern int allocate_registers();
extern int accumulate();
extern int report();
extern int ir_count;

int pipeline_iterations;
int pipeline_round;
int pipeline_changed;

int optimize_function(int variant) {
  gen_function(variant);
  find_blocks();
  for (pipeline_round = 0; pipeline_round < 4; pipeline_round++) {
    pipeline_changed = 0;
    pipeline_changed += fold_pass();
    pipeline_changed += copyprop_pass();
    pipeline_changed += cse_pass();
    pipeline_changed += peephole_pass();
    pipeline_changed += dce_pass();
    pipeline_iterations++;
    if (!pipeline_changed) break;
  }
  allocate_registers();
  accumulate();
  return ir_count;
}

int main() {
  int variant;
  int size_sig = 0;
  for (variant = 0; variant < 10; variant++)
    size_sig = (size_sig + optimize_function(variant)) & 65535;
  report();
  print(pipeline_iterations);
  print(size_sig);
  return size_sig & 255;
}
"""

WORKLOAD = register(
    Workload(
        name="paopt",
        description="An optimizer, optimizing synthesized functions",
        sources={
            "pa_ir": _IR,
            "pa_cfg": _CFG,
            "pa_fold": _FOLD,
            "pa_copy": _COPY,
            "pa_dce": _DCE,
            "pa_cse": _CSE,
            "pa_peep": _PEEP,
            "pa_ra": _RA,
            "pa_stats": _STATS,
            "pa_main": _MAIN,
        },
        paper_counterpart="PA Opt",
        paper_lines=85000,
    )
)
