"""Code repositioning tool (CR Tool counterpart).

A prototype procedure-reordering tool in the Pettis-Hansen style: it
synthesizes a weighted call graph, then repeatedly merges the chains
joined by the hottest edge until only layout chains remain, and finally
scores the layout (how many hot edges land within a page).  Array-heavy
graph processing with global scalar work-state — the same profile as the
paper's CR Tool benchmark (modest cycle gains, small singleton pool).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register

_GRAPH = """
// crtool module 1: synthetic weighted call graph.
int NPROCS = 120;
int edge_from[2000];
int edge_to[2000];
int edge_weight[2000];
int edge_count;
int proc_size[128];
int rng = 5551212;

int next_rand() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int add_edge(int from, int to, int weight) {
  edge_from[edge_count] = from;
  edge_to[edge_count] = to;
  edge_weight[edge_count] = weight;
  edge_count++;
  return edge_count;
}

int build_graph(int variant) {
  int i, calls, callee;
  rng = 5551212 + variant * 101;
  edge_count = 0;
  for (i = 0; i < NPROCS; i++)
    proc_size[i] = 1 + next_rand() % 40;
  for (i = 0; i < NPROCS; i++) {
    calls = 1 + next_rand() % 6;
    while (calls > 0) {
      callee = next_rand() % NPROCS;
      if (callee != i)
        add_edge(i, callee, 1 + next_rand() % 1000);
      calls--;
    }
  }
  return edge_count;
}
"""

_CHAINS = """
// crtool module 2: chain merging (the repositioning core).
extern int NPROCS;
extern int edge_from[];
extern int edge_to[];
extern int edge_weight[];
extern int edge_count;

int chain_of[128];      // proc -> chain id
int chain_head[128];    // chain id -> first proc
int chain_next[128];    // proc -> next proc in its chain (-1 = end)
int chain_tail[128];    // chain id -> last proc
int merges_done;
int weight_merged;

int init_chains() {
  int i;
  for (i = 0; i < NPROCS; i++) {
    chain_of[i] = i;
    chain_head[i] = i;
    chain_tail[i] = i;
    chain_next[i] = -1;
  }
  merges_done = 0;
  weight_merged = 0;
  return 0;
}

int hottest_mergeable_edge() {
  // Index of the heaviest edge joining two distinct chains tail-to-head.
  int best = -1;
  int best_weight = 0;
  int i;
  for (i = 0; i < edge_count; i++) {
    int ca = chain_of[edge_from[i]];
    int cb = chain_of[edge_to[i]];
    if (ca == cb) continue;
    if (chain_tail[ca] != edge_from[i]) continue;
    if (chain_head[cb] != edge_to[i]) continue;
    if (edge_weight[i] > best_weight) {
      best_weight = edge_weight[i];
      best = i;
    }
  }
  return best;
}

int merge_chains(int edge) {
  // Append the callee's chain after the caller's chain.
  int ca = chain_of[edge_from[edge]];
  int cb = chain_of[edge_to[edge]];
  int p;
  chain_next[chain_tail[ca]] = chain_head[cb];
  chain_tail[ca] = chain_tail[cb];
  p = chain_head[cb];
  while (p >= 0) {
    chain_of[p] = ca;
    p = chain_next[p];
  }
  merges_done++;
  weight_merged += edge_weight[edge];
  return ca;
}

int run_merging() {
  int edge;
  init_chains();
  for (;;) {
    edge = hottest_mergeable_edge();
    if (edge < 0) break;
    merge_chains(edge);
  }
  return merges_done;
}
"""

_LAYOUT = """
// crtool module 3: layout scoring + driver.
extern int NPROCS;
extern int edge_from[];
extern int edge_to[];
extern int edge_weight[];
extern int edge_count;
extern int proc_size[];
extern int chain_of[];
extern int chain_head[];
extern int chain_next[];
extern int build_graph(int);
extern int run_merging();
extern int merges_done;
extern int weight_merged;

int position[128];
int layouts_scored;
int PAGE = 64;

int assign_positions() {
  // Walk the chains in id order, laying procedures out sequentially.
  int cursor = 0;
  int c, p;
  for (c = 0; c < NPROCS; c++) {
    if (chain_of[c] != c) continue;     // not a chain representative
    p = chain_head[c];
    while (p >= 0) {
      position[p] = cursor;
      cursor += proc_size[p];
      p = chain_next[p];
    }
  }
  return cursor;
}

int score_layout() {
  // Weighted fraction of call edges that stay within one page.
  int i;
  int hits = 0;
  for (i = 0; i < edge_count; i++) {
    int pa = position[edge_from[i]] / PAGE;
    int pb = position[edge_to[i]] / PAGE;
    if (pa == pb)
      hits += edge_weight[i];
  }
  layouts_scored++;
  return hits;
}

int main() {
  int variant;
  int total_score = 0;
  int total_merges = 0;
  for (variant = 0; variant < 6; variant++) {
    build_graph(variant);
    run_merging();
    assign_positions();
    total_score += score_layout() & 65535;
    total_merges += merges_done;
  }
  print(total_merges);
  print(weight_merged);
  print(total_score);
  print(layouts_scored);
  return total_score & 255;
}
"""

WORKLOAD = register(
    Workload(
        name="crtool",
        description="Prototype code repositioning tool",
        sources={
            "cr_graph": _GRAPH,
            "cr_chains": _CHAINS,
            "cr_layout": _LAYOUT,
        },
        paper_counterpart="CR Tool",
        paper_lines=2700,
    )
)
