"""Othello (Reversi) self-play game program.

Two deterministic greedy strategies play each other on the global 8x8
board.  The hot global scalars — current player, piece counts, move
statistics — are read and written from the move generator, the flipping
routine, and the evaluator across module boundaries, which is the usage
pattern the paper's Othello benchmark rewards promotion for (~20%
singleton reduction, ~5% cycles).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register

_BOARD = """
// othello module 1: board representation and rules.
int board[64];          // 0 empty, 1 black, 2 white
int dir_off[8] = {-9, -8, -7, -1, 1, 7, 8, 9};
int to_move;
int black_count;
int white_count;
int flips_made;
int moves_played;
int passes;

int opponent(int player) { return 3 - player; }

int on_board(int sq, int d) {
  // Would stepping from sq by direction index d stay on the board?
  int row = sq / 8;
  int col = sq % 8;
  int off = dir_off[d];
  int nrow = row + (off + 16) / 8 - 2;
  int ncol;
  if (off == -9 || off == -1 || off == 7) ncol = col - 1;
  else if (off == -8 || off == 8) ncol = col;
  else ncol = col + 1;
  if (off == -9 || off == -8 || off == -7) nrow = row - 1;
  else if (off == -1 || off == 1) nrow = row;
  else nrow = row + 1;
  if (nrow < 0 || nrow > 7 || ncol < 0 || ncol > 7) return -1;
  return nrow * 8 + ncol;
}

int line_flips(int sq, int d, int player) {
  // Number of opponent stones bracketed from sq in direction d.
  int count = 0;
  int cur = on_board(sq, d);
  int opp = opponent(player);
  while (cur >= 0 && board[cur] == opp) {
    count++;
    cur = on_board(cur, d);
  }
  if (cur < 0 || board[cur] != player)
    return 0;
  return count;
}

int legal_gain(int sq, int player) {
  // Total flips if player moves at sq (0 = illegal).
  int d;
  int total = 0;
  if (board[sq] != 0) return 0;
  for (d = 0; d < 8; d++)
    total += line_flips(sq, d, player);
  return total;
}

int do_flip_line(int sq, int d, int player) {
  int n = line_flips(sq, d, player);
  int cur = sq;
  int i;
  for (i = 0; i < n; i++) {
    cur = on_board(cur, d);
    board[cur] = player;
    flips_made++;
  }
  return n;
}

int play_move(int sq, int player) {
  int d;
  int flipped = 0;
  for (d = 0; d < 8; d++)
    flipped += do_flip_line(sq, d, player);
  board[sq] = player;
  moves_played++;
  return flipped;
}

int recount() {
  int i;
  black_count = 0;
  white_count = 0;
  for (i = 0; i < 64; i++) {
    if (board[i] == 1) black_count++;
    else if (board[i] == 2) white_count++;
  }
  return black_count + white_count;
}

int init_board() {
  int i;
  for (i = 0; i < 64; i++) board[i] = 0;
  board[27] = 2; board[28] = 1;
  board[35] = 1; board[36] = 2;
  to_move = 1;
  flips_made = 0;
  moves_played = 0;
  passes = 0;
  recount();
  return 0;
}
"""

_AI = """
// othello module 2: the two strategies.
extern int board[];
extern int legal_gain(int, int);
extern int play_move(int, int);
extern int opponent(int);
extern int to_move;
extern int passes;

int positional_weight[64] = {
  120, -20, 20,  5,  5, 20, -20, 120,
  -20, -40, -5, -5, -5, -5, -40, -20,
   20,  -5, 15,  3,  3, 15,  -5,  20,
    5,  -5,  3,  3,  3,  3,  -5,   5,
    5,  -5,  3,  3,  3,  3,  -5,   5,
   20,  -5, 15,  3,  3, 15,  -5,  20,
  -20, -40, -5, -5, -5, -5, -40, -20,
  120, -20, 20,  5,  5, 20, -20, 120
};
int evals_done;

int greedy_pick(int player) {
  // Maximize immediate flips; ties broken by square order.
  int best_sq = -1;
  int best_gain = 0;
  int sq;
  for (sq = 0; sq < 64; sq++) {
    int gain = legal_gain(sq, player);
    evals_done++;
    if (gain > best_gain) {
      best_gain = gain;
      best_sq = sq;
    }
  }
  return best_sq;
}

int positional_pick(int player) {
  // Maximize flips weighted by square desirability.
  int best_sq = -1;
  int best_score = -100000;
  int sq;
  for (sq = 0; sq < 64; sq++) {
    int gain = legal_gain(sq, player);
    evals_done++;
    if (gain > 0) {
      int score = gain * 4 + positional_weight[sq];
      if (score > best_score) {
        best_score = score;
        best_sq = sq;
      }
    }
  }
  return best_sq;
}

int take_turn() {
  // Plays one ply; returns 0 when the side to move had to pass.
  int player = to_move;
  int sq;
  if (player == 1)
    sq = greedy_pick(player);
  else
    sq = positional_pick(player);
  to_move = opponent(player);
  if (sq < 0) {
    passes++;
    return 0;
  }
  play_move(sq, player);
  return 1;
}
"""

_MAIN = """
// othello module 3: self-play driver.
extern int init_board();
extern int take_turn();
extern int recount();
extern int board[];
extern int black_count;
extern int white_count;
extern int flips_made;
extern int moves_played;
extern int passes;
extern int evals_done;

int games_played;
int black_wins;
int white_wins;

extern int to_move;

int play_game(int game_index) {
  int consecutive_passes = 0;
  init_board();
  to_move = 1 + (game_index & 1);
  // Vary the opening so the games differ.
  board[20 + game_index % 3] = 1 + game_index % 2;
  while (consecutive_passes < 2 && moves_played < 60) {
    if (take_turn())
      consecutive_passes = 0;
    else
      consecutive_passes++;
  }
  recount();
  games_played++;
  if (black_count > white_count) black_wins++;
  else if (white_count > black_count) white_wins++;
  return black_count - white_count;
}

int main() {
  int g;
  int margin_sum = 0;
  for (g = 0; g < 6; g++)
    margin_sum += play_game(g);
  print(games_played);
  print(black_wins);
  print(white_wins);
  print(margin_sum);
  print(flips_made);
  print(moves_played);
  print(passes);
  print(evals_done);
  print(black_count);
  print(white_count);
  return (flips_made + margin_sum) & 255;
}
"""

WORKLOAD = register(
    Workload(
        name="othello",
        description="Game program (Othello self-play)",
        sources={
            "oth_board": _BOARD,
            "oth_ai": _AI,
            "oth_main": _MAIN,
        },
        paper_counterpart="Othello",
        paper_lines=800,
    )
)
