"""Proto C counterpart: a fast little compiler, compiling and running
synthesized programs.

Like the paper's Proto C — "coded specifically to take advantage of
global register variables" — the scanner, parser, code generator, and
stack-machine interpreter all keep their hot state (source cursor,
current token, code cursor, VM registers) in global scalars shared
across modules.  Interprocedural promotion should therefore help this
workload the most, as it did in the paper (18.7%).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register

_SCAN = """
// protoc module 1: source buffer + scanner.
// Token kinds: 0 eof, 1 number, 2 ident, 3 '+', 4 '-', 5 '*', 6 '/',
//              7 '(', 8 ')', 9 '=', 10 ';', 11 '%'
int src[30000];
int src_len;
int pos;
int cur_char;
int token;
int token_value;
int tokens_scanned;

int advance() {
  pos++;
  cur_char = src[pos];
  return cur_char;
}

int is_digit(int c) { return c >= '0' && c <= '9'; }
int is_alpha(int c) { return c >= 'a' && c <= 'z'; }

int next_token() {
  while (cur_char == ' ')
    advance();
  tokens_scanned++;
  if (cur_char == 0) { token = 0; return token; }
  if (is_digit(cur_char)) {
    token_value = 0;
    while (is_digit(cur_char)) {
      token_value = token_value * 10 + cur_char - '0';
      advance();
    }
    token = 1;
    return token;
  }
  if (is_alpha(cur_char)) {
    token_value = cur_char - 'a';
    advance();
    token = 2;
    return token;
  }
  if (cur_char == '+') { advance(); token = 3; return token; }
  if (cur_char == '-') { advance(); token = 4; return token; }
  if (cur_char == '*') { advance(); token = 5; return token; }
  if (cur_char == '/') { advance(); token = 6; return token; }
  if (cur_char == '(') { advance(); token = 7; return token; }
  if (cur_char == ')') { advance(); token = 8; return token; }
  if (cur_char == '=') { advance(); token = 9; return token; }
  if (cur_char == ';') { advance(); token = 10; return token; }
  if (cur_char == '%') { advance(); token = 11; return token; }
  advance();
  token = 0;
  return token;
}

int scan_init() {
  pos = -1;
  advance();
  next_token();
  return token;
}
"""

_PARSE = """
// protoc module 2: recursive-descent parser emitting stack code.
// Opcodes: 1 push-const, 2 load-var, 3 store-var, 4 add, 5 sub,
//          6 mul, 7 div, 8 mod, 9 halt
extern int token;
extern int token_value;
extern int next_token();

int code_op[20000];
int code_arg[20000];
int code_len;
int parse_errors;
int nodes_parsed;

int emit(int op, int arg) {
  code_op[code_len] = op;
  code_arg[code_len] = arg;
  code_len++;
  return code_len;
}

extern int parse_expr();

int parse_primary() {
  nodes_parsed++;
  if (token == 1) {
    emit(1, token_value);
    next_token();
    return 1;
  }
  if (token == 2) {
    emit(2, token_value);
    next_token();
    return 1;
  }
  if (token == 7) {
    next_token();
    parse_expr();
    if (token == 8) next_token();
    else parse_errors++;
    return 1;
  }
  if (token == 4) {            // unary minus: 0 - primary
    next_token();
    emit(1, 0);
    parse_primary();
    emit(5, 0);
    return 1;
  }
  parse_errors++;
  next_token();
  return 0;
}

int parse_term() {
  nodes_parsed++;
  parse_primary();
  while (token == 5 || token == 6 || token == 11) {
    int op = token;
    next_token();
    parse_primary();
    if (op == 5) emit(6, 0);
    else if (op == 6) emit(7, 0);
    else emit(8, 0);
  }
  return 1;
}

int parse_expr() {
  nodes_parsed++;
  parse_term();
  while (token == 3 || token == 4) {
    int op = token;
    next_token();
    parse_term();
    if (op == 3) emit(4, 0);
    else emit(5, 0);
  }
  return 1;
}

int parse_stmt() {
  // stmt := ident '=' expr ';'
  int var;
  nodes_parsed++;
  if (token != 2) { parse_errors++; next_token(); return 0; }
  var = token_value;
  next_token();
  if (token != 9) { parse_errors++; return 0; }
  next_token();
  parse_expr();
  emit(3, var);
  if (token == 10) next_token();
  else parse_errors++;
  return 1;
}

int parse_program() {
  code_len = 0;
  parse_errors = 0;
  while (token != 0)
    parse_stmt();
  emit(9, 0);
  return code_len;
}
"""

_VM = """
// protoc module 3: stack-machine interpreter.
extern int code_op[];
extern int code_arg[];
extern int code_len;

int stack[256];
int vars[26];
int sp;
int vm_pc;
int steps_executed;

int vm_reset() {
  int i;
  for (i = 0; i < 26; i++) vars[i] = 0;
  sp = 0;
  vm_pc = 0;
  return 0;
}

int vm_step() {
  // Executes one instruction; returns 0 on halt.
  int op = code_op[vm_pc];
  int arg = code_arg[vm_pc];
  int a, b;
  vm_pc++;
  steps_executed++;
  if (op == 1) { stack[sp] = arg; sp++; return 1; }
  if (op == 2) { stack[sp] = vars[arg]; sp++; return 1; }
  if (op == 3) { sp--; vars[arg] = stack[sp]; return 1; }
  sp--; b = stack[sp];
  sp--; a = stack[sp];
  if (op == 4) stack[sp] = a + b;
  else if (op == 5) stack[sp] = a - b;
  else if (op == 6) stack[sp] = a * b;
  else if (op == 7) stack[sp] = b ? a / b : 0;
  else if (op == 8) stack[sp] = b ? a % b : 0;
  else return 0;
  sp++;
  return 1;
}

int vm_run() {
  vm_reset();
  while (vm_step())
    ;
  return vars[0];
}
"""

_MAIN = """
// protoc module 4: program synthesizer + driver.
extern int src[];
extern int src_len;
extern int scan_init();
extern int parse_program();
extern int vm_run();
extern int tokens_scanned;
extern int nodes_parsed;
extern int parse_errors;
extern int steps_executed;
extern int code_len;
extern int vars[];

int gen_rng;
int gen_pos;
int programs_compiled;

int gen_rand() {
  gen_rng = gen_rng * 1103515245 + 12345;
  return (gen_rng >> 16) & 32767;
}

int put(int c) {
  src[gen_pos] = c;
  gen_pos++;
  return gen_pos;
}

int gen_number() {
  int n = 1 + gen_rand() % 999;
  if (n >= 100) put('0' + n / 100);
  if (n >= 10) put('0' + n / 10 % 10);
  put('0' + n % 10);
  return n;
}

int gen_primary(int depth);

int gen_term(int depth) {
  int k;
  gen_primary(depth);
  k = gen_rand() % 3;
  while (k > 0) {
    int w = gen_rand() % 3;
    if (w == 0) put('*');
    else if (w == 1) put('/');
    else put('%');
    gen_primary(depth);
    k--;
  }
  return 0;
}

int gen_expr(int depth) {
  int k;
  gen_term(depth);
  k = gen_rand() % 3;
  while (k > 0) {
    put(gen_rand() % 2 ? '+' : '-');
    gen_term(depth);
    k--;
  }
  return 0;
}

int gen_primary(int depth) {
  int w = gen_rand() % 4;
  if (w == 3 && depth < 3) {
    put('(');
    gen_expr(depth + 1);
    put(')');
    return 0;
  }
  if (w == 2) {
    put('a' + gen_rand() % 6);
    return 0;
  }
  gen_number();
  return 0;
}

int gen_program(int variant) {
  int stmts, s;
  gen_rng = 24601 + variant * 31;
  gen_pos = 0;
  stmts = 12 + gen_rand() % 8;
  for (s = 0; s < stmts; s++) {
    put('a' + s % 6);
    put('=');
    gen_expr(0);
    put(';');
  }
  put(0);
  src_len = gen_pos;
  return gen_pos;
}

int main() {
  int variant;
  int result_sig = 0;
  for (variant = 0; variant < 25; variant++) {
    gen_program(variant);
    scan_init();
    parse_program();
    result_sig = (result_sig * 7 + vm_run()) & 1048575;
    programs_compiled++;
  }
  print(programs_compiled);
  print(tokens_scanned);
  print(nodes_parsed);
  print(parse_errors);
  print(code_len);
  print(steps_executed);
  print(result_sig);
  return result_sig & 255;
}
"""

WORKLOAD = register(
    Workload(
        name="protoc",
        description="A fast compiler, compiling synthesized programs",
        sources={
            "pc_scan": _SCAN,
            "pc_parse": _PARSE,
            "pc_vm": _VM,
            "pc_main": _MAIN,
        },
        paper_counterpart="Proto C",
        paper_lines=6600,
    )
)
