"""Workload registry: the benchmark programs of the paper's Table 3.

Each workload is a deterministic multi-module Tiny-C program with no
inputs; correctness is checked by comparing program output across every
optimization configuration (the differential oracle), and performance by
the simulator's cycle / memory-reference counters.

The programs were written for this reproduction to have the same
*character* as the paper's benchmarks: the same kinds of call-graph
shapes, global-variable usage patterns, and hot-path structure that the
paper credits for its results.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Workload:
    """One benchmark program."""

    name: str
    description: str
    sources: dict
    max_cycles: int = 200_000_000
    # The paper benchmark this one mirrors, for the Table 3 listing.
    paper_counterpart: str = ""
    paper_lines: int = 0

    @property
    def lines_of_code(self) -> int:
        return sum(
            len(text.strip().splitlines()) for text in self.sources.values()
        )


_REGISTRY: dict = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def all_workloads() -> dict:
    """Name -> workload, in registration (Table 3) order."""
    # Import side effect: registers everything.
    from repro.workloads import (  # noqa: F401
        dhrystone,
        fgrep,
        othello,
        war,
        crtool,
        protoc,
        paopt,
    )

    return dict(_REGISTRY)


def get_workload(name: str) -> Workload:
    workloads = all_workloads()
    if name not in workloads:
        raise KeyError(
            f"unknown workload {name!r}; have {sorted(workloads)}"
        )
    return workloads[name]
