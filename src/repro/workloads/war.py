"""War card game simulation.

Simulates many games of the children's card game War between two
players, with circular-queue decks in global arrays and a cluster of hot
global scalars (queue cursors, round counters, war-depth statistics)
accessed from small leaf procedures — a call-intensive profile like the
paper's War benchmark.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register

_DECK = """
// war module 1: deck management (circular queues in globals).
int deck_a[128];
int deck_b[128];
int head_a, count_a;
int head_b, count_b;
int pot[64];
int pot_size;
int rng = 987654321;

int next_rand() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int draw_a() {
  int card = deck_a[head_a];
  head_a = (head_a + 1) & 127;
  count_a--;
  return card;
}

int draw_b() {
  int card = deck_b[head_b];
  head_b = (head_b + 1) & 127;
  count_b--;
  return card;
}

int give_a(int card) {
  deck_a[(head_a + count_a) & 127] = card;
  count_a++;
  return count_a;
}

int give_b(int card) {
  deck_b[(head_b + count_b) & 127] = card;
  count_b++;
  return count_b;
}

int pot_add(int card) {
  pot[pot_size] = card;
  pot_size++;
  return pot_size;
}

int award_pot(int to_a) {
  // Winner takes the pot in a fixed order (keeps games deterministic).
  int i;
  for (i = 0; i < pot_size; i++) {
    if (to_a) give_a(pot[i]);
    else give_b(pot[i]);
  }
  i = pot_size;
  pot_size = 0;
  return i;
}

int deal(int game) {
  // Shuffle a 52-card deck with Fisher-Yates and split it.
  int cards[52];
  int i, j, tmp;
  rng = 987654321 + game * 77;
  for (i = 0; i < 52; i++) cards[i] = 2 + i % 13;
  for (i = 51; i > 0; i--) {
    j = next_rand() % (i + 1);
    tmp = cards[i];
    cards[i] = cards[j];
    cards[j] = tmp;
  }
  head_a = 0; count_a = 0;
  head_b = 0; count_b = 0;
  pot_size = 0;
  for (i = 0; i < 26; i++) give_a(cards[i]);
  for (i = 26; i < 52; i++) give_b(cards[i]);
  return 0;
}
"""

_GAME = """
// war module 2: game rules.
extern int draw_a(); extern int draw_b();
extern int give_a(int); extern int give_b(int);
extern int pot_add(int);
extern int award_pot(int);
extern int count_a, count_b;

int rounds_played;
int wars_fought;
int deepest_war;
int cards_flipped;

int battle(int depth) {
  // One battle (possibly recursive war); 1 if A wins the pot, 0 B,
  // -1 if someone ran out of cards during a war.
  int card_a, card_b, i;
  if (count_a == 0) return 0;
  if (count_b == 0) return 1;
  card_a = draw_a();
  card_b = draw_b();
  cards_flipped += 2;
  pot_add(card_a);
  pot_add(card_b);
  if (card_a > card_b) return 1;
  if (card_b > card_a) return 0;
  // War: three cards face down each, then battle again.
  wars_fought++;
  if (depth > deepest_war) deepest_war = depth;
  for (i = 0; i < 3; i++) {
    if (count_a == 0) return 0;
    if (count_b == 0) return 1;
    pot_add(draw_a());
    pot_add(draw_b());
    cards_flipped += 2;
  }
  return battle(depth + 1);
}

int play_round() {
  // Returns 1 while the game continues.
  int winner = battle(1);
  rounds_played++;
  award_pot(winner);
  if (count_a == 0 || count_b == 0) return 0;
  return 1;
}
"""

_MAIN = """
// war module 3: driver.
extern int deal(int);
extern int play_round();
extern int count_a, count_b;
extern int rounds_played;
extern int wars_fought;
extern int deepest_war;
extern int cards_flipped;

int games_a_won;
int games_b_won;
int games_drawn;

int play_game(int game) {
  int rounds = 0;
  deal(game);
  while (rounds < 3000) {
    if (!play_round()) break;
    rounds++;
  }
  if (count_a > count_b) { games_a_won++; return 1; }
  if (count_b > count_a) { games_b_won++; return 2; }
  games_drawn++;
  return 0;
}

int main() {
  int g;
  int outcome_sig = 0;
  for (g = 0; g < 25; g++)
    outcome_sig = (outcome_sig * 3 + play_game(g)) & 1048575;
  print(games_a_won);
  print(games_b_won);
  print(games_drawn);
  print(rounds_played);
  print(wars_fought);
  print(deepest_war);
  print(cards_flipped);
  print(outcome_sig);
  return outcome_sig & 255;
}
"""

WORKLOAD = register(
    Workload(
        name="war",
        description="Game program (War card game simulation)",
        sources={"war_deck": _DECK, "war_game": _GAME, "war_main": _MAIN},
        paper_counterpart="War",
        paper_lines=1500,
    )
)
