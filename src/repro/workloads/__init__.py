"""The benchmark workloads (paper Table 3)."""

from repro.workloads.base import Workload, all_workloads, get_workload

__all__ = ["Workload", "all_workloads", "get_workload"]
