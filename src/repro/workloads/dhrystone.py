"""Dhrystone-style synthetic CPU benchmark.

Mirrors the classic Dhrystone structure: a main loop exercising small
procedures (Proc_1..Proc_8, Func_1..Func_3) that manipulate global
scalars, a global "record" pair (emulated with arrays — Tiny-C has no
structs), and global arrays.  The global scalars (Int_Glob, Bool_Glob,
Ch_1_Glob, Ch_2_Glob) are the promotion targets; the record/array
traffic is the non-singleton background.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register

_MAIN = """
// Dhrystone-flavoured synthetic benchmark, module 1: driver + records.
extern int Proc_1(int);
extern int Proc_2(int);
extern int Proc_3(int);
extern int Func_1(int, int);
extern int Func_2(int, int);

int Int_Glob;
int Bool_Glob;
int Ch_1_Glob;
int Ch_2_Glob;
int Arr_1_Glob[50];
int Arr_2_Glob[100];

// Records: [0]=next index, [1]=discr, [2]=enum_comp, [3]=int_comp
int Rec_Glob[8];
int Next_Rec_Glob[8];

int Proc_4() {
  int Bool_Loc;
  Bool_Loc = Ch_1_Glob == 'A';
  Bool_Loc = Bool_Loc | Bool_Glob;
  Ch_2_Glob = 'B';
  return Bool_Loc;
}

int Proc_5() {
  Ch_1_Glob = 'A';
  Bool_Glob = 0;
  return 0;
}

int Proc_7(int Int_1, int Int_2) {
  int Int_Loc;
  Int_Loc = Int_1 + 2;
  return Int_2 + Int_Loc;
}

int Proc_8(int *Arr_1, int *Arr_2, int Int_1, int Int_2) {
  int Int_Loc;
  int Int_Index;
  Int_Loc = Int_1 + 5;
  Arr_1[Int_Loc] = Int_2;
  Arr_1[Int_Loc + 1] = Arr_1[Int_Loc];
  Arr_1[Int_Loc + 30] = Int_Loc;
  for (Int_Index = Int_Loc; Int_Index <= Int_Loc + 1; Int_Index++)
    Arr_2[Int_Loc * 2 + Int_Index - Int_Loc] = Int_Loc;
  Arr_2[Int_Loc * 2 + 1] = Arr_2[Int_Loc * 2 + 1] + 1;
  Arr_2[Int_Loc + 40] = Arr_1[Int_Loc];
  Int_Glob = 5;
  return 0;
}

int main() {
  int Int_1_Loc, Int_2_Loc, Int_3_Loc;
  int Ch_Index;
  int Run_Index;
  int Number_Of_Runs = 600;
  int checksum = 0;

  Proc_5();
  Proc_4();
  Int_1_Loc = 2;
  Int_2_Loc = 3;
  Int_3_Loc = 0;

  for (Run_Index = 1; Run_Index <= Number_Of_Runs; Run_Index++) {
    Proc_5();
    Proc_4();
    Int_1_Loc = 2;
    Int_2_Loc = 3;
    Ch_Index = 'A';
    Bool_Glob = !Func_2(Ch_Index, 'C');
    while (Int_1_Loc < Int_2_Loc) {
      Int_3_Loc = 5 * Int_1_Loc - Int_2_Loc;
      Int_3_Loc = Proc_7(Int_1_Loc, Int_3_Loc);
      Int_1_Loc = Int_1_Loc + 1;
    }
    Proc_8(Arr_1_Glob, Arr_2_Glob, Int_1_Loc, Int_3_Loc);
    Proc_1(Run_Index & 3);
    for (Ch_Index = 'A'; Ch_Index <= Ch_2_Glob; Ch_Index++) {
      if (Func_1(Ch_Index, 'C')) {
        Bool_Glob = 1;
        Int_2_Loc = Int_2_Loc + 1;
      }
    }
    Int_2_Loc = Int_2_Loc * Int_1_Loc;
    Int_1_Loc = Int_2_Loc / Int_3_Loc;
    Int_2_Loc = 7 * (Int_2_Loc - Int_3_Loc) - Int_1_Loc;
    Int_1_Loc = Proc_2(Int_1_Loc);
    checksum = (checksum + Int_Glob + Bool_Glob + Ch_1_Glob
                + Ch_2_Glob + Int_1_Loc + Int_2_Loc) & 65535;
  }
  print(checksum);
  print(Int_Glob);
  print(Bool_Glob);
  print(Ch_1_Glob);
  print(Ch_2_Glob);
  print(Arr_1_Glob[7]);
  print(Arr_2_Glob[15]);
  print(Rec_Glob[3]);
  print(Next_Rec_Glob[2]);
  return checksum & 127;
}
"""

_PROCS = """
// Dhrystone-flavoured synthetic benchmark, module 2: leaf procedures.
extern int Int_Glob;
extern int Bool_Glob;
extern int Ch_1_Glob;
extern int Ch_2_Glob;
extern int Rec_Glob[];
extern int Next_Rec_Glob[];

int Proc_6(int Enum_Val) {
  int Enum_Ref;
  Enum_Ref = Enum_Val;
  if (Enum_Val != 2)
    Enum_Ref = 3;
  if (Enum_Val == 0)
    Enum_Ref = Int_Glob > 100 ? 0 : 4;
  else if (Enum_Val == 1)
    Enum_Ref = Bool_Glob ? 1 : 3;
  return Enum_Ref;
}

int Proc_3(int kind) {
  // Follow the record chain and update int_comp.
  Rec_Glob[2] = Proc_6(kind);
  Rec_Glob[3] = Int_Glob + 10;
  return Rec_Glob[2];
}

int Proc_1(int kind) {
  Next_Rec_Glob[1] = Rec_Glob[1];
  Next_Rec_Glob[3] = Rec_Glob[3];
  Proc_3(kind);
  if (Next_Rec_Glob[1] == 0) {
    Next_Rec_Glob[2] = Proc_6(kind);
    Next_Rec_Glob[3] = Rec_Glob[3] + Int_Glob;
  } else {
    Rec_Glob[3] = Next_Rec_Glob[3];
  }
  return Next_Rec_Glob[3];
}

int Proc_2(int Int_Val) {
  int Int_Loc;
  int Enum_Loc;
  Int_Loc = Int_Val + 10;
  Enum_Loc = 0;
  do {
    if (Ch_1_Glob == 'A') {
      Int_Loc = Int_Loc - 1;
      Int_Val = Int_Loc - Int_Glob;
      Enum_Loc = 1;
    }
  } while (Enum_Loc != 1);
  return Int_Val;
}

int Func_1(int Ch_1, int Ch_2) {
  int Ch_1_Loc, Ch_2_Loc;
  Ch_1_Loc = Ch_1;
  Ch_2_Loc = Ch_1_Loc;
  if (Ch_2_Loc != Ch_2)
    return 0;
  Ch_1_Glob = Ch_1_Loc;
  return 1;
}

int Func_2(int Ch_1, int Ch_2) {
  int Int_Loc;
  int Ch_Loc;
  Int_Loc = 2;
  Ch_Loc = Ch_1 + 1;
  while (Int_Loc <= 2) {
    if (Func_1(Ch_Loc - 1, Ch_2) == 0)
      Int_Loc = Int_Loc + 1;
    else
      return Bool_Glob;
  }
  if (Ch_Loc > 'W' && Ch_Loc < 'Z')
    Int_Loc = 7;
  if (Ch_Loc == Ch_2 + 1)
    Int_Loc = Int_Loc + 1;
  if (Int_Loc == 4)
    return 1;
  Int_Glob = Int_Loc;
  return 0;
}
"""

WORKLOAD = register(
    Workload(
        name="dhrystone",
        description="Synthetic CPU benchmark (Dhrystone-style)",
        sources={"dhry_main": _MAIN, "dhry_procs": _PROCS},
        paper_counterpart="Dhrystone",
        paper_lines=380,
    )
)
