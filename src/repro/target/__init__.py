"""PRISM target description.

The simulated 32-register load-store RISC machine the reproduction
compiles for (DESIGN.md: "Same register-file shape and linkage
convention" as the paper's PA-RISC setting):

* :mod:`repro.target.registers` — register file and software linkage
  convention (16 callee-saves / 13 caller-saves registers);
* :mod:`repro.target.isa` — the machine instruction set, shared by
  instruction selection, the register allocator, the linker, and the
  simulator;
* :mod:`repro.target.frame` — stack frame layout and symbolic frame
  locations resolved at frame finalization;
* :mod:`repro.target.costs` — the default cycle cost model (one cycle
  per instruction, matching the paper's "excluding cache miss
  penalties" accounting).
"""

from repro.target import costs, frame, isa, registers
from repro.target.frame import FrameLayout, FrameLoc
from repro.target.isa import MInstr, Reg, VReg
from repro.target.registers import (
    ALL_ALLOCATABLE,
    ARG_REGISTERS,
    CALLEE_SAVES,
    CALLER_SAVES,
    MAX_REG_ARGS,
    NUM_REGISTERS,
    RP,
    RV,
    SP,
    ZERO,
    register_name,
    register_number,
)

__all__ = [
    "ALL_ALLOCATABLE",
    "ARG_REGISTERS",
    "CALLEE_SAVES",
    "CALLER_SAVES",
    "FrameLayout",
    "FrameLoc",
    "MAX_REG_ARGS",
    "MInstr",
    "NUM_REGISTERS",
    "RP",
    "RV",
    "Reg",
    "SP",
    "VReg",
    "ZERO",
    "costs",
    "frame",
    "isa",
    "register_name",
    "register_number",
    "registers",
]
