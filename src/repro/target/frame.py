"""PRISM stack frame layout.

The stack grows downward through word-addressed memory; SP is lowered by
the frame size in the prologue and raised back in the epilogue, so all
frame accesses are non-negative offsets from the adjusted SP:

::

    higher addresses (caller's frame)
    +---------------------------+
    | incoming overflow args    |  caller's outgoing area
    +===========================+  <- SP before prologue
    | local slots               |  arrays / aliased locals
    | saved callee/MSPILL regs  |
    | saved RP                  |  only when the procedure makes calls
    | spill slots               |
    | outgoing overflow args    |  5th and later call arguments
    +===========================+  <- SP after prologue
    lower addresses

The outgoing overflow area sits at the bottom so a callee can find its
incoming overflow arguments at ``frame_size + (index - MAX_REG_ARGS)``
without knowing anything about the caller's frame: the caller's SP at
the call *is* its adjusted SP, and argument ``index`` lives
``index - MAX_REG_ARGS`` words above it.

Until frame finalization runs, instructions reference frame positions
symbolically through :class:`FrameLoc`; :class:`FrameLayout` assigns the
concrete word offsets once the spill count and save set are known.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.target.registers import MAX_REG_ARGS


class FrameLoc:
    """A symbolic frame location, resolved by :meth:`FrameLayout.resolve`.

    Kinds and their ``index`` meaning:

    * ``"outgoing"`` — overflow argument slot; index is the *argument*
      position (``MAX_REG_ARGS`` or higher);
    * ``"incoming"`` — same, but relative to the caller's frame;
    * ``"spill"``    — allocator spill slot number;
    * ``"saved_rp"`` — the return-pointer save slot (index unused);
    * ``"saved_reg"``— save slot of physical register ``index``;
    * ``"slot"``     — local frame slot number (arrays, aliased locals).
    """

    __slots__ = ("kind", "index")

    KINDS = ("outgoing", "incoming", "spill", "saved_rp", "saved_reg",
             "slot")

    def __init__(self, kind: str, index: int = 0):
        if kind not in self.KINDS:
            raise ValueError(f"unknown frame location kind {kind!r}")
        self.kind = kind
        self.index = index

    def __repr__(self) -> str:
        if self.kind == "saved_rp":
            return "{saved_rp}"
        return f"{{{self.kind}.{self.index}}}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FrameLoc)
            and self.kind == other.kind
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.index))


@dataclass
class FrameLayout:
    """Concrete frame layout of one procedure, fixed after allocation.

    Offsets are words above the adjusted SP.  A procedure needing
    nothing (leaf, no locals, no saves) has ``frame_size == 0`` and
    never adjusts SP at all.
    """

    slot_sizes: list = field(default_factory=list)
    num_spills: int = 0
    saved_registers: list = field(default_factory=list)
    save_rp: bool = False
    max_outgoing_args: int = 0

    def __post_init__(self):
        self.outgoing_words = max(0, self.max_outgoing_args - MAX_REG_ARGS)
        self._spill_base = self.outgoing_words
        self._rp_offset = self._spill_base + self.num_spills
        self._saved_base = self._rp_offset + (1 if self.save_rp else 0)
        self._saved_offset = {
            register: self._saved_base + position
            for position, register in enumerate(self.saved_registers)
        }
        self._slot_base: list = []
        offset = self._saved_base + len(self.saved_registers)
        for size in self.slot_sizes:
            self._slot_base.append(offset)
            offset += size
        self.frame_size = offset

    def resolve(self, loc: FrameLoc) -> int:
        """Word offset (from the adjusted SP) of a symbolic location."""
        if loc.kind == "outgoing":
            return loc.index - MAX_REG_ARGS
        if loc.kind == "incoming":
            return self.frame_size + (loc.index - MAX_REG_ARGS)
        if loc.kind == "spill":
            return self._spill_base + loc.index
        if loc.kind == "saved_rp":
            return self._rp_offset
        if loc.kind == "saved_reg":
            return self._saved_offset[loc.index]
        if loc.kind == "slot":
            return self._slot_base[loc.index]
        raise ValueError(f"unresolvable frame location {loc!r}")
