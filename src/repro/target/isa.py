"""PRISM instruction set.

A small load-store RISC ISA shared by every layer that touches machine
code: instruction selection builds these objects over *virtual*
registers (:class:`VReg`), the register allocator renames them to
physical register numbers (plain ``int``), frame finalization resolves
symbolic :class:`~repro.target.frame.FrameLoc` offsets, object emission
turns branch labels into instruction indices, the linker rebases them,
and the simulator decodes the final form.

Every instruction exposes the small protocol the generic analyses need:

* ``uses()`` / ``defs()`` — operand registers read / written (virtual or
  physical), driving liveness and interference construction;
* ``rename(mapping)`` — substitute register operands in place;
* ``successors()`` — block labels this instruction may branch to (only
  meaningful before object emission, while targets are still labels);
* ``is_call`` — True for ``BL``/``BLR``; call instructions additionally
  *define* their clobber set, which is how the allocator steers values
  live across calls away from registers a callee may destroy.

Register operands are either an ``int`` (physical register number, see
:mod:`repro.target.registers`) or a :class:`VReg`; :data:`Reg` is the
union of the two.
"""

from __future__ import annotations

from typing import Union

from repro.target.registers import register_name


class VReg:
    """A virtual register: identity-hashed, unique per function."""

    __slots__ = ("uid", "hint")

    def __init__(self, uid: int, hint: str = ""):
        self.uid = uid
        self.hint = hint

    def __repr__(self) -> str:
        if self.hint:
            return f"v{self.uid}.{self.hint}"
        return f"v{self.uid}"


Reg = Union[int, VReg]


def _fmt(value) -> str:
    """Format a register operand, an immediate, or a branch target."""
    if isinstance(value, int):
        return register_name(value) if 0 <= value < 32 else str(value)
    return repr(value)


def _imm(value) -> str:
    """Format a value that is *data*, never a register."""
    return repr(value) if not isinstance(value, int) else str(value)


def _sub(value, mapping):
    try:
        return mapping.get(value, value)
    except TypeError:  # pragma: no cover - unhashable operands never occur
        return value


class MInstr:
    """Base class for PRISM instructions."""

    __slots__ = ()

    is_call = False

    def uses(self) -> list:
        """Registers read by this instruction."""
        return []

    def defs(self) -> list:
        """Registers written by this instruction."""
        return []

    def rename(self, mapping: dict) -> None:
        """Substitute register operands according to ``mapping``."""

    def successors(self) -> list:
        """Branch-target labels (pre-emission control flow)."""
        return []


class LDI(MInstr):
    """Load immediate: ``rd <- imm``."""

    __slots__ = ("rd", "imm")

    def __init__(self, rd: Reg, imm: int):
        self.rd = rd
        self.imm = imm

    def uses(self) -> list:
        return []

    def defs(self) -> list:
        return [self.rd]

    def rename(self, mapping: dict) -> None:
        self.rd = _sub(self.rd, mapping)

    def __repr__(self) -> str:
        return f"LDI {_fmt(self.rd)}, {self.imm}"


class LDA(MInstr):
    """Load the address of a symbol: ``rd <- &symbol``.

    ``resolved`` is filled by the linker: a code index for function
    symbols, a data address for globals.
    """

    __slots__ = ("rd", "symbol", "is_function", "resolved")

    def __init__(self, rd: Reg, symbol: str, is_function: bool = False):
        self.rd = rd
        self.symbol = symbol
        self.is_function = is_function
        self.resolved: int | None = None

    def uses(self) -> list:
        return []

    def defs(self) -> list:
        return [self.rd]

    def rename(self, mapping: dict) -> None:
        self.rd = _sub(self.rd, mapping)

    def __repr__(self) -> str:
        kind = "code" if self.is_function else "data"
        where = f" @{self.resolved}" if self.resolved is not None else ""
        return f"LDA {_fmt(self.rd)}, {self.symbol}[{kind}]{where}"


class MOV(MInstr):
    """Register copy: ``rd <- rs``."""

    __slots__ = ("rd", "rs")

    def __init__(self, rd: Reg, rs: Reg):
        self.rd = rd
        self.rs = rs

    def uses(self) -> list:
        return [self.rs]

    def defs(self) -> list:
        return [self.rd]

    def rename(self, mapping: dict) -> None:
        self.rd = _sub(self.rd, mapping)
        self.rs = _sub(self.rs, mapping)

    def __repr__(self) -> str:
        return f"MOV {_fmt(self.rd)}, {_fmt(self.rs)}"


class ALU(MInstr):
    """Three-register arithmetic/logic: ``rd <- ra op rb``."""

    __slots__ = ("op", "rd", "ra", "rb")

    def __init__(self, op: str, rd: Reg, ra: Reg, rb: Reg):
        self.op = op
        self.rd = rd
        self.ra = ra
        self.rb = rb

    def uses(self) -> list:
        return [self.ra, self.rb]

    def defs(self) -> list:
        return [self.rd]

    def rename(self, mapping: dict) -> None:
        self.rd = _sub(self.rd, mapping)
        self.ra = _sub(self.ra, mapping)
        self.rb = _sub(self.rb, mapping)

    def __repr__(self) -> str:
        return (
            f"ALU[{self.op}] {_fmt(self.rd)}, {_fmt(self.ra)}, "
            f"{_fmt(self.rb)}"
        )


class ALUI(MInstr):
    """Register-immediate arithmetic/logic: ``rd <- ra op imm``.

    ``imm`` may be a symbolic :class:`~repro.target.frame.FrameLoc`
    until frame finalization resolves it to a word offset.
    """

    __slots__ = ("op", "rd", "ra", "imm")

    def __init__(self, op: str, rd: Reg, ra: Reg, imm):
        self.op = op
        self.rd = rd
        self.ra = ra
        self.imm = imm

    def uses(self) -> list:
        return [self.ra]

    def defs(self) -> list:
        return [self.rd]

    def rename(self, mapping: dict) -> None:
        self.rd = _sub(self.rd, mapping)
        self.ra = _sub(self.ra, mapping)

    def __repr__(self) -> str:
        return (
            f"ALUI[{self.op}] {_fmt(self.rd)}, {_fmt(self.ra)}, "
            f"{_imm(self.imm)}"
        )


class CMP(MInstr):
    """Comparison producing 0/1: ``rd <- (ra op rb)``."""

    __slots__ = ("op", "rd", "ra", "rb")

    def __init__(self, op: str, rd: Reg, ra: Reg, rb: Reg):
        self.op = op
        self.rd = rd
        self.ra = ra
        self.rb = rb

    def uses(self) -> list:
        return [self.ra, self.rb]

    def defs(self) -> list:
        return [self.rd]

    def rename(self, mapping: dict) -> None:
        self.rd = _sub(self.rd, mapping)
        self.ra = _sub(self.ra, mapping)
        self.rb = _sub(self.rb, mapping)

    def __repr__(self) -> str:
        return (
            f"CMP[{self.op}] {_fmt(self.rd)}, {_fmt(self.ra)}, "
            f"{_fmt(self.rb)}"
        )


class LDW(MInstr):
    """Load word: ``rd <- memory[base + offset]``.

    ``offset`` may be a symbolic frame location until finalization.
    ``singleton`` statically tags accesses of simple scalar variables
    (including register save/restore traffic) for Table 5 accounting.
    ``save_restore`` further tags prologue/epilogue register
    save/restore traffic specifically, so the simulator can attribute
    linkage overhead per procedure (Tables 4-5).
    """

    __slots__ = ("rd", "base", "offset", "singleton", "save_restore")

    def __init__(self, rd: Reg, base: Reg, offset, singleton: bool = False,
                 save_restore: bool = False):
        self.rd = rd
        self.base = base
        self.offset = offset
        self.singleton = singleton
        self.save_restore = save_restore

    def uses(self) -> list:
        return [self.base]

    def defs(self) -> list:
        return [self.rd]

    def rename(self, mapping: dict) -> None:
        self.rd = _sub(self.rd, mapping)
        self.base = _sub(self.base, mapping)

    def __repr__(self) -> str:
        tag = " !s" if self.singleton else ""
        return (
            f"LDW {_fmt(self.rd)}, {_imm(self.offset)}"
            f"({_fmt(self.base)}){tag}"
        )


class STW(MInstr):
    """Store word: ``memory[base + offset] <- rs``."""

    __slots__ = ("rs", "base", "offset", "singleton", "save_restore")

    def __init__(self, rs: Reg, base: Reg, offset, singleton: bool = False,
                 save_restore: bool = False):
        self.rs = rs
        self.base = base
        self.offset = offset
        self.singleton = singleton
        self.save_restore = save_restore

    def uses(self) -> list:
        return [self.rs, self.base]

    def defs(self) -> list:
        return []

    def rename(self, mapping: dict) -> None:
        self.rs = _sub(self.rs, mapping)
        self.base = _sub(self.base, mapping)

    def __repr__(self) -> str:
        tag = " !s" if self.singleton else ""
        return (
            f"STW {_fmt(self.rs)}, {_imm(self.offset)}"
            f"({_fmt(self.base)}){tag}"
        )


class B(MInstr):
    """Unconditional branch to a label (an instruction index after
    object emission)."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def successors(self) -> list:
        return [self.target] if isinstance(self.target, str) else []

    def __repr__(self) -> str:
        return f"B {self.target}"


class BC(MInstr):
    """Compare-and-branch (PA-RISC ``COMB``): branch to ``target`` when
    ``ra op rb`` holds; otherwise fall through."""

    __slots__ = ("op", "ra", "rb", "target")

    def __init__(self, op: str, ra: Reg, rb: Reg, target):
        self.op = op
        self.ra = ra
        self.rb = rb
        self.target = target

    def uses(self) -> list:
        return [self.ra, self.rb]

    def defs(self) -> list:
        return []

    def rename(self, mapping: dict) -> None:
        self.ra = _sub(self.ra, mapping)
        self.rb = _sub(self.rb, mapping)

    def successors(self) -> list:
        return [self.target] if isinstance(self.target, str) else []

    def __repr__(self) -> str:
        return (
            f"BC[{self.op}] {_fmt(self.ra)}, {_fmt(self.rb)}, "
            f"{self.target}"
        )


class BL(MInstr):
    """Branch-and-link (direct call): ``RP <- pc + 1; pc <- callee``.

    ``arg_regs`` lists the physical argument registers the call site
    loaded; ``clobbers`` is the register set the callee may destroy
    (``CALLER ∪ MSPILL ∪ {RV, RP}`` by directive, or the callee
    subtree's actual usage under caller-saves preallocation).  The
    allocator treats the clobber set as defined by the call; the
    simulator's convention checker verifies everything outside it is
    preserved.  ``resolved`` is the linked entry pc.
    """

    __slots__ = ("callee", "arg_regs", "clobbers", "resolved")

    is_call = True

    def __init__(self, callee: str, arg_regs: list, clobbers: list):
        self.callee = callee
        self.arg_regs = list(arg_regs)
        self.clobbers = list(clobbers)
        self.resolved: int | None = None

    def uses(self) -> list:
        return list(self.arg_regs)

    def defs(self) -> list:
        return list(self.clobbers)

    def __repr__(self) -> str:
        args = ", ".join(_fmt(r) for r in self.arg_regs)
        return f"BL {self.callee}({args})"


class BLR(MInstr):
    """Branch-and-link through a register (indirect call)."""

    __slots__ = ("target", "arg_regs", "clobbers")

    is_call = True

    def __init__(self, target: Reg, arg_regs: list, clobbers: list):
        self.target = target
        self.arg_regs = list(arg_regs)
        self.clobbers = list(clobbers)

    def uses(self) -> list:
        return [self.target] + list(self.arg_regs)

    def defs(self) -> list:
        return list(self.clobbers)

    def rename(self, mapping: dict) -> None:
        self.target = _sub(self.target, mapping)

    def __repr__(self) -> str:
        args = ", ".join(_fmt(r) for r in self.arg_regs)
        return f"BLR {_fmt(self.target)}({args})"


class RET(MInstr):
    """Return: ``pc <- RP``.  ``live_out`` names the registers carrying
    values out of the procedure (RV for non-void returns), keeping them
    live through the epilogue."""

    __slots__ = ("live_out",)

    def __init__(self, live_out=()):
        self.live_out = list(live_out)

    def uses(self) -> list:
        return list(self.live_out)

    def defs(self) -> list:
        return []

    def __repr__(self) -> str:
        regs = ", ".join(_fmt(r) for r in self.live_out)
        return f"RET {regs}".rstrip()


class SYS(MInstr):
    """Runtime service call (``print`` / ``putc``): consumes ``ra``.

    Builtins are simulator syscalls, not procedures — they appear in no
    call graph and clobber no registers (docs/TINYC.md).
    """

    __slots__ = ("kind", "ra")

    def __init__(self, kind: str, ra: Reg):
        self.kind = kind
        self.ra = ra

    def uses(self) -> list:
        return [self.ra]

    def defs(self) -> list:
        return []

    def rename(self, mapping: dict) -> None:
        self.ra = _sub(self.ra, mapping)

    def __repr__(self) -> str:
        return f"SYS[{self.kind}] {_fmt(self.ra)}"


class HALT(MInstr):
    """Stop the machine (the startup stub's final instruction)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "HALT"
