"""PRISM register file and software linkage convention.

Thirty-two general registers, partitioned by software convention
(DESIGN.md: 16 callee-saves / 13 caller-saves):

========  =========  ====================================================
register  name       role
========  =========  ====================================================
r0        ``ZERO``   hardwired zero: reads 0, writes are discarded
r1        ``RV``     return value; caller-saves
r2        ``SP``     stack pointer; reserved (never allocated)
r3        ``RP``     return pointer, written by ``BL``/``BLR``; reserved
r4-r7     args       first four arguments; caller-saves
r8-r15    —          caller-saves scratch
r16-r31   —          callee-saves
========  =========  ====================================================

The caller-saves set is ``{RV} ∪ {r4..r15}`` (13 registers); the
callee-saves set is ``{r16..r31}`` (16 registers).  The analyzer's
FREE/CALLER/CALLEE/MSPILL usage sets (paper Figure 6) start from this
convention and the backend allocator draws from ``ALL_ALLOCATABLE`` —
everything except ZERO, SP, and RP.
"""

from __future__ import annotations

NUM_REGISTERS = 32

# Special registers.
ZERO = 0  # hardwired zero
RV = 1  # return value
SP = 2  # stack pointer
RP = 3  # return pointer (link register)

# Up to four arguments travel in registers (docs/TINYC.md: r4-r7).
ARG_REGISTERS = (4, 5, 6, 7)
MAX_REG_ARGS = len(ARG_REGISTERS)

# Linkage convention: 13 caller-saves, 16 callee-saves.
CALLER_SAVES = frozenset({RV}) | frozenset(range(4, 16))
CALLEE_SAVES = frozenset(range(16, NUM_REGISTERS))

# Every register the allocator may hand out.
ALL_ALLOCATABLE = CALLER_SAVES | CALLEE_SAVES

_SPECIAL_NAMES = {ZERO: "zero", RV: "rv", SP: "sp", RP: "rp"}


def register_name(register: int) -> str:
    """Human-readable name of a physical register (``r8``, ``rv``...)."""
    if not 0 <= register < NUM_REGISTERS:
        raise ValueError(f"no such register: {register}")
    return _SPECIAL_NAMES.get(register, f"r{register}")


def register_number(name: str) -> int:
    """Inverse of :func:`register_name`."""
    for register, special in _SPECIAL_NAMES.items():
        if name == special:
            return register
    if name.startswith("r"):
        try:
            register = int(name[1:])
        except ValueError:
            raise ValueError(f"no such register: {name!r}") from None
        if 0 <= register < NUM_REGISTERS and register not in _SPECIAL_NAMES:
            return register
    raise ValueError(f"no such register: {name!r}")
