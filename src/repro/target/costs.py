"""Default PRISM cycle cost model.

One cycle per instruction across the board — the paper reports cycle
counts "excluding cache miss penalties", so no memory hierarchy is
modelled and loads cost the same as ALU operations.  Experiments that
want a different machine balance (e.g. slow multiply/divide) construct a
:class:`repro.machine.simulator.CostModel` with overrides; these
constants are the single source of the defaults.
"""

ALU_CYCLES = 1
MUL_CYCLES = 1
DIV_CYCLES = 1
LOAD_CYCLES = 1
STORE_CYCLES = 1
BRANCH_CYCLES = 1
CALL_CYCLES = 1
OTHER_CYCLES = 1
