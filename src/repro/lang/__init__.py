"""Tiny-C language front end: lexer, parser, AST, semantic analysis."""

from repro.lang.errors import (
    CompileError,
    LexError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_module
from repro.lang.sema import ModuleInfo, analyze_module, analyze_source

__all__ = [
    "CompileError",
    "LexError",
    "ModuleInfo",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "analyze_module",
    "analyze_source",
    "parse_module",
    "tokenize",
]
