"""Token definitions for the Tiny-C language.

Tiny-C is a restricted C dialect sufficient to express the paper's
workloads: integer scalars and arrays, pointers, function pointers,
``static`` module-private globals, ``extern`` declarations, and the usual
structured control flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.errors import SourceLocation


class TokenKind(enum.Enum):
    """All lexical categories recognized by the lexer."""

    # Literals and identifiers.
    IDENT = "identifier"
    INT_LITERAL = "integer literal"
    CHAR_LITERAL = "character literal"
    STRING_LITERAL = "string literal"

    # Keywords.
    KW_INT = "int"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_DO = "do"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_STATIC = "static"
    KW_EXTERN = "extern"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    QUESTION = "?"
    COLON = ":"

    EOF = "end of input"


KEYWORDS = {
    "int": TokenKind.KW_INT,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "static": TokenKind.KW_STATIC,
    "extern": TokenKind.KW_EXTERN,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: The lexical category.
        text: The exact source text of the token.
        value: Decoded value for literals (int for INT/CHAR literals,
            str for STRING literals); ``None`` otherwise.
        location: Where the token begins.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
