"""Semantic analysis for Tiny-C.

Resolves names to symbols, checks declarations and expression shapes, and
annotates the AST in place.  Analysis is strictly per-module: references to
other compilation units must go through ``extern`` declarations, exactly as
in the paper's multi-module compilation model.

Key outputs used downstream:

* ``NameExpr.symbol`` / ``LocalDecl.symbol`` point at resolved symbols.
* ``CallExpr.is_indirect`` distinguishes direct calls (callee is a function
  symbol) from calls through pointer values.
* ``GlobalSymbol.address_taken`` and ``LocalSymbol.address_taken`` record
  aliasing, which makes globals ineligible for interprocedural promotion
  and forces locals into the stack frame.
* ``FunctionSymbol.address_taken`` records procedures whose address has
  been computed (conservative indirect-call targets, paper section 7.3).

Static globals and functions are qualified as ``module.name`` so that
identically-named statics in different modules stay distinct (section 7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lang import ast
from repro.lang.errors import SemanticError, SourceLocation

WORD_SIZE_BYTES = 4

# Built-in procedures provided by the runtime/simulator.
#   print(x)  - write decimal integer + newline to the program output
#   putc(c)   - write one character to the program output
BUILTIN_FUNCTIONS = {
    "print": 1,
    "putc": 1,
}


@dataclass
class Symbol:
    """Base class for all resolved symbols."""

    name: str
    location: SourceLocation


@dataclass
class GlobalSymbol(Symbol):
    """A module-level variable (definition or extern reference).

    ``qualified_name`` is the link-level name: equal to ``name`` for
    external-linkage globals, ``module.name`` for statics.
    """

    module: str = ""
    qualified_name: str = ""
    is_static: bool = False
    is_extern_ref: bool = False
    is_array: bool = False
    size_words: int = 1
    pointer_level: int = 0
    init: Optional[int] = None
    array_init: Optional[list[int]] = None
    address_taken: bool = False

    @property
    def is_promotable_shape(self) -> bool:
        """True if the variable fits in one register (scalar, word-sized)."""
        return not self.is_array and self.size_words == 1


@dataclass
class FunctionSymbol(Symbol):
    """A function definition or prototype."""

    module: str = ""
    qualified_name: str = ""
    is_static: bool = False
    return_type: str = "int"
    param_count: int = 0
    is_defined: bool = False
    address_taken: bool = False


@dataclass
class BuiltinSymbol(Symbol):
    """A runtime-provided procedure such as ``print``."""

    param_count: int = 1


@dataclass
class LocalSymbol(Symbol):
    """A local variable or parameter within one function."""

    uid: int = 0
    is_param: bool = False
    param_index: int = -1
    is_array: bool = False
    size_words: int = 1
    pointer_level: int = 0
    address_taken: bool = False
    array_init: Optional[list[int]] = None


@dataclass
class FunctionInfo:
    """Sema results for one defined function."""

    symbol: FunctionSymbol
    definition: ast.FunctionDef
    params: list[LocalSymbol] = field(default_factory=list)
    locals: list[LocalSymbol] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Sema results for one compilation unit."""

    module: ast.Module
    globals: dict[str, GlobalSymbol] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    function_infos: list[FunctionInfo] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.module.name


class _Scope:
    """A lexical scope mapping names to local symbols."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: dict[str, LocalSymbol] = {}

    def define(self, symbol: LocalSymbol) -> None:
        if symbol.name in self.names:
            raise SemanticError(
                f"redefinition of local {symbol.name!r}", symbol.location
            )
        self.names[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[LocalSymbol]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Runs all semantic checks over one module AST."""

    def __init__(self, module: ast.Module):
        self._module = module
        self._info = ModuleInfo(module)
        self._local_uid = 0
        self._loop_depth = 0
        self._current_function: Optional[FunctionInfo] = None
        self._scope: Optional[_Scope] = None

    def analyze(self) -> ModuleInfo:
        """Analyze the module; returns the populated :class:`ModuleInfo`."""
        self._collect_top_level()
        for decl in self._module.decls:
            if isinstance(decl, ast.FunctionDef):
                self._analyze_function(decl)
        return self._info

    # -- module level ----------------------------------------------------

    def _qualify(self, name: str, is_static: bool) -> str:
        if is_static:
            return f"{self._module.name}.{name}"
        return name

    def _collect_top_level(self) -> None:
        for decl in self._module.decls:
            if isinstance(decl, ast.GlobalVarDecl):
                self._declare_global(decl)
            elif isinstance(decl, ast.ExternVarDecl):
                self._declare_extern_var(decl)
            elif isinstance(decl, ast.FunctionDef):
                self._declare_function(decl)
            elif isinstance(decl, ast.ExternFuncDecl):
                self._declare_prototype(decl)
            else:  # pragma: no cover - parser produces no other nodes
                raise SemanticError("unknown top-level declaration", decl.location)

    def _check_top_level_name(self, name: str, location: SourceLocation) -> None:
        if name in BUILTIN_FUNCTIONS:
            raise SemanticError(
                f"{name!r} conflicts with a builtin procedure", location
            )
        if name in self._info.globals or name in self._info.functions:
            raise SemanticError(f"redefinition of {name!r}", location)

    def _declare_global(self, decl: ast.GlobalVarDecl) -> None:
        self._check_top_level_name(decl.name, decl.location)
        size_words = decl.array_size if decl.array_size is not None else 1
        if decl.array_size is not None and decl.array_size <= 0:
            raise SemanticError("array size must be positive", decl.location)
        symbol = GlobalSymbol(
            decl.name,
            decl.location,
            module=self._module.name,
            qualified_name=self._qualify(decl.name, decl.is_static),
            is_static=decl.is_static,
            is_array=decl.array_size is not None,
            size_words=size_words,
            pointer_level=decl.pointer_level,
            init=decl.init,
            array_init=decl.array_init,
        )
        self._info.globals[decl.name] = symbol

    def _declare_extern_var(self, decl: ast.ExternVarDecl) -> None:
        self._check_top_level_name(decl.name, decl.location)
        symbol = GlobalSymbol(
            decl.name,
            decl.location,
            module=self._module.name,
            qualified_name=decl.name,
            is_extern_ref=True,
            is_array=decl.is_array,
            size_words=1,
            pointer_level=decl.pointer_level,
        )
        self._info.globals[decl.name] = symbol

    def _declare_function(self, decl: ast.FunctionDef) -> None:
        existing = self._info.functions.get(decl.name)
        if existing is not None:
            if existing.is_defined:
                raise SemanticError(
                    f"redefinition of function {decl.name!r}", decl.location
                )
            if existing.param_count != len(decl.params):
                raise SemanticError(
                    f"definition of {decl.name!r} disagrees with prototype",
                    decl.location,
                )
            existing.is_defined = True
            existing.is_static = existing.is_static or decl.is_static
            existing.return_type = decl.return_type
            existing.qualified_name = self._qualify(decl.name, existing.is_static)
            return
        if decl.name in self._info.globals or decl.name in BUILTIN_FUNCTIONS:
            raise SemanticError(f"redefinition of {decl.name!r}", decl.location)
        seen_params = set()
        for param in decl.params:
            if param.name in seen_params:
                raise SemanticError(
                    f"duplicate parameter {param.name!r}", param.location
                )
            seen_params.add(param.name)
        self._info.functions[decl.name] = FunctionSymbol(
            decl.name,
            decl.location,
            module=self._module.name,
            qualified_name=self._qualify(decl.name, decl.is_static),
            is_static=decl.is_static,
            return_type=decl.return_type,
            param_count=len(decl.params),
            is_defined=True,
        )

    def _declare_prototype(self, decl: ast.ExternFuncDecl) -> None:
        existing = self._info.functions.get(decl.name)
        if existing is not None:
            if existing.param_count != decl.param_count:
                raise SemanticError(
                    f"conflicting prototypes for {decl.name!r}", decl.location
                )
            return
        if decl.name in self._info.globals:
            raise SemanticError(f"redefinition of {decl.name!r}", decl.location)
        if decl.name in BUILTIN_FUNCTIONS:
            # Redeclaring a builtin prototype is harmless; ignore it.
            if BUILTIN_FUNCTIONS[decl.name] != decl.param_count:
                raise SemanticError(
                    f"builtin {decl.name!r} takes "
                    f"{BUILTIN_FUNCTIONS[decl.name]} argument(s)",
                    decl.location,
                )
            return
        self._info.functions[decl.name] = FunctionSymbol(
            decl.name,
            decl.location,
            module=self._module.name,
            qualified_name=decl.name,
            return_type=decl.return_type,
            param_count=decl.param_count,
            is_defined=False,
        )

    # -- functions ---------------------------------------------------------

    def _new_local(self, **kwargs) -> LocalSymbol:
        self._local_uid += 1
        return LocalSymbol(uid=self._local_uid, **kwargs)

    def _analyze_function(self, decl: ast.FunctionDef) -> None:
        symbol = self._info.functions[decl.name]
        info = FunctionInfo(symbol, decl)
        self._current_function = info
        self._scope = _Scope()
        for index, param in enumerate(decl.params):
            local = self._new_local(
                name=param.name,
                location=param.location,
                is_param=True,
                param_index=index,
                pointer_level=param.pointer_level,
            )
            self._scope.define(local)
            info.params.append(local)
        assert decl.body is not None
        self._analyze_block(decl.body)
        self._info.function_infos.append(info)
        self._current_function = None
        self._scope = None

    def _analyze_block(self, block: ast.Block) -> None:
        self._scope = _Scope(self._scope)
        for stmt in block.statements:
            self._analyze_stmt(stmt)
        assert self._scope is not None
        self._scope = self._scope.parent

    def _analyze_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.ExprStmt):
            self._analyze_expr(stmt.expr, value_used=False)
        elif isinstance(stmt, ast.LocalDecl):
            self._analyze_local_decl(stmt)
        elif isinstance(stmt, ast.Block):
            self._analyze_block(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._analyze_expr(stmt.cond)
            self._analyze_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._analyze_stmt(stmt.else_body)
        elif isinstance(stmt, ast.WhileStmt):
            self._analyze_expr(stmt.cond)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhileStmt):
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
            self._analyze_expr(stmt.cond)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._analyze_expr(stmt.init, value_used=False)
            if stmt.cond is not None:
                self._analyze_expr(stmt.cond)
            if stmt.step is not None:
                self._analyze_expr(stmt.step, value_used=False)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ReturnStmt):
            assert self._current_function is not None
            returns_void = self._current_function.symbol.return_type == "void"
            if stmt.value is not None:
                if returns_void:
                    raise SemanticError(
                        "void function cannot return a value", stmt.location
                    )
                self._analyze_expr(stmt.value)
            elif not returns_void:
                raise SemanticError(
                    "non-void function must return a value", stmt.location
                )
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.BreakStmt) else "continue"
                raise SemanticError(f"{keyword!r} outside a loop", stmt.location)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover
            raise SemanticError("unknown statement", stmt.location)

    def _analyze_local_decl(self, decl: ast.LocalDecl) -> None:
        if decl.array_size is not None and decl.array_size <= 0:
            raise SemanticError("array size must be positive", decl.location)
        local = self._new_local(
            name=decl.name,
            location=decl.location,
            is_array=decl.array_size is not None,
            size_words=decl.array_size if decl.array_size is not None else 1,
            pointer_level=decl.pointer_level,
            array_init=decl.array_init,
        )
        if decl.init is not None:
            self._analyze_expr(decl.init)
        assert self._scope is not None
        self._scope.define(local)
        decl.symbol = local
        assert self._current_function is not None
        self._current_function.locals.append(local)

    # -- expressions -------------------------------------------------------

    def _analyze_expr(self, expr: ast.Expr, value_used: bool = True) -> None:
        if isinstance(expr, ast.IntLiteral):
            return
        if isinstance(expr, ast.NameExpr):
            self._resolve_name(expr)
            symbol = expr.symbol
            if value_used and isinstance(symbol, (FunctionSymbol, BuiltinSymbol)):
                # Bare function name used as a value: its address is taken.
                if isinstance(symbol, BuiltinSymbol):
                    raise SemanticError(
                        f"cannot take the address of builtin {symbol.name!r}",
                        expr.location,
                    )
                symbol.address_taken = True
            return
        if isinstance(expr, ast.UnaryExpr):
            if expr.op == "&":
                self._analyze_address_of(expr)
                return
            self._analyze_expr(expr.operand)
            return
        if isinstance(expr, ast.BinaryExpr):
            self._analyze_expr(expr.lhs)
            self._analyze_expr(expr.rhs)
            return
        if isinstance(expr, ast.AssignExpr):
            self._analyze_lvalue(expr.target)
            self._analyze_expr(expr.value)
            return
        if isinstance(expr, ast.IncDecExpr):
            self._analyze_lvalue(expr.target)
            return
        if isinstance(expr, ast.CallExpr):
            self._analyze_call(expr, value_used)
            return
        if isinstance(expr, ast.IndexExpr):
            self._analyze_expr(expr.base)
            self._analyze_expr(expr.index)
            return
        if isinstance(expr, ast.CondExpr):
            self._analyze_expr(expr.cond)
            self._analyze_expr(expr.then)
            self._analyze_expr(expr.otherwise)
            return
        raise SemanticError("unknown expression", expr.location)  # pragma: no cover

    def _resolve_name(self, expr: ast.NameExpr) -> None:
        assert self._scope is not None
        local = self._scope.lookup(expr.name)
        if local is not None:
            expr.symbol = local
            return
        if expr.name in self._info.globals:
            expr.symbol = self._info.globals[expr.name]
            return
        if expr.name in self._info.functions:
            expr.symbol = self._info.functions[expr.name]
            return
        if expr.name in BUILTIN_FUNCTIONS:
            expr.symbol = BuiltinSymbol(
                expr.name, expr.location, BUILTIN_FUNCTIONS[expr.name]
            )
            return
        raise SemanticError(f"undefined name {expr.name!r}", expr.location)

    def _analyze_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.NameExpr):
            self._resolve_name(expr)
            symbol = expr.symbol
            if isinstance(symbol, (FunctionSymbol, BuiltinSymbol)):
                raise SemanticError(
                    f"cannot assign to function {expr.name!r}", expr.location
                )
            if isinstance(symbol, (GlobalSymbol, LocalSymbol)) and symbol.is_array:
                raise SemanticError(
                    f"cannot assign to array {expr.name!r}", expr.location
                )
            return
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            self._analyze_expr(expr.operand)
            return
        if isinstance(expr, ast.IndexExpr):
            self._analyze_expr(expr.base)
            self._analyze_expr(expr.index)
            return
        raise SemanticError("expression is not assignable", expr.location)

    def _analyze_address_of(self, expr: ast.UnaryExpr) -> None:
        operand = expr.operand
        if isinstance(operand, ast.NameExpr):
            self._resolve_name(operand)
            symbol = operand.symbol
            if isinstance(symbol, BuiltinSymbol):
                raise SemanticError(
                    f"cannot take the address of builtin {symbol.name!r}",
                    expr.location,
                )
            if isinstance(symbol, (GlobalSymbol, LocalSymbol, FunctionSymbol)):
                symbol.address_taken = True
                return
        if isinstance(operand, ast.IndexExpr):
            self._analyze_expr(operand.base)
            self._analyze_expr(operand.index)
            # &a[i]: the array object itself is aliased.
            base = operand.base
            if isinstance(base, ast.NameExpr) and isinstance(
                base.symbol, (GlobalSymbol, LocalSymbol)
            ):
                base.symbol.address_taken = True
            return
        if isinstance(operand, ast.UnaryExpr) and operand.op == "*":
            # &*p is just p.
            self._analyze_expr(operand.operand)
            return
        raise SemanticError("cannot take the address of this expression", expr.location)

    def _analyze_call(self, expr: ast.CallExpr, value_used: bool) -> None:
        callee = expr.callee
        if isinstance(callee, ast.NameExpr):
            self._resolve_name(callee)
            symbol = callee.symbol
            if isinstance(symbol, BuiltinSymbol):
                expr.is_indirect = False
                if len(expr.args) != symbol.param_count:
                    raise SemanticError(
                        f"builtin {symbol.name!r} takes "
                        f"{symbol.param_count} argument(s), got {len(expr.args)}",
                        expr.location,
                    )
            elif isinstance(symbol, FunctionSymbol):
                expr.is_indirect = False
                if len(expr.args) != symbol.param_count:
                    raise SemanticError(
                        f"function {symbol.name!r} takes "
                        f"{symbol.param_count} argument(s), got {len(expr.args)}",
                        expr.location,
                    )
                if value_used and symbol.return_type == "void":
                    raise SemanticError(
                        f"void function {symbol.name!r} used as a value",
                        expr.location,
                    )
            else:
                # Calling through a variable holding a function address.
                expr.is_indirect = True
        else:
            self._analyze_expr(callee)
            expr.is_indirect = True
        for arg in expr.args:
            self._analyze_expr(arg)


def analyze_module(module: ast.Module) -> ModuleInfo:
    """Run semantic analysis on a parsed module."""
    return SemanticAnalyzer(module).analyze()


def analyze_source(source: str, module_name: str = "<input>") -> ModuleInfo:
    """Parse and analyze Tiny-C source text."""
    from repro.lang.parser import parse_module

    return analyze_module(parse_module(source, module_name))
