"""Diagnostic types shared by the Tiny-C front end.

Every front-end failure is reported through :class:`CompileError`, which
carries a source location so callers (and tests) can pinpoint the offending
construct.  The front end never raises bare ``ValueError``/``RuntimeError``
for user-program problems.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position within a source module.

    Attributes:
        module: Name of the module (compilation unit) being compiled.
        line: 1-based line number.
        column: 1-based column number.
    """

    module: str = "<unknown>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.module}:{self.line}:{self.column}"


class CompileError(Exception):
    """A diagnosable error in a user program (lexical, syntactic, semantic)."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class LexError(CompileError):
    """Raised for malformed tokens."""


class ParseError(CompileError):
    """Raised for grammar violations."""


class SemanticError(CompileError):
    """Raised for type errors, undefined names, and declaration conflicts."""
