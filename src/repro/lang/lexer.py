"""Hand-written lexer for Tiny-C.

The lexer produces a flat list of :class:`~repro.lang.tokens.Token` objects
ending with a single ``EOF`` token.  Both ``//`` line comments and
``/* ... */`` block comments are supported.
"""

from __future__ import annotations

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import KEYWORDS, Token, TokenKind

# Multi-character operators, longest first so maximal munch works.
_MULTI_CHAR_OPERATORS = [
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
]

_SINGLE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
}

_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
}


class Lexer:
    """Converts Tiny-C source text into a token stream."""

    def __init__(self, source: str, module_name: str = "<input>"):
        self._source = source
        self._module = module_name
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input; returns tokens terminated by an EOF token."""
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._module, self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        location = self._location()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, "", location)

        ch = self._peek()
        if ch.isdigit():
            return self._lex_number(location)
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(location)
        if ch == "'":
            return self._lex_char(location)
        if ch == '"':
            return self._lex_string(location)

        for text, kind in _MULTI_CHAR_OPERATORS:
            if self._source.startswith(text, self._pos):
                self._advance(len(text))
                return Token(kind, text, location)

        kind = _SINGLE_CHAR_OPERATORS.get(ch)
        if kind is not None:
            self._advance()
            return Token(kind, ch, location)

        raise LexError(f"unexpected character {ch!r}", location)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            if not self._is_hex_digit(self._peek()):
                raise LexError("malformed hexadecimal literal", location)
            while self._is_hex_digit(self._peek()):
                self._advance()
            text = self._source[start:self._pos]
            return Token(TokenKind.INT_LITERAL, text, location, int(text, 16))
        while self._peek().isdigit():
            self._advance()
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError("identifier may not start with a digit", location)
        text = self._source[start:self._pos]
        return Token(TokenKind.INT_LITERAL, text, location, int(text, 10))

    @staticmethod
    def _is_hex_digit(ch: str) -> bool:
        return bool(ch) and ch in "0123456789abcdefABCDEF"

    def _lex_identifier(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start:self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, location)

    def _lex_char(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        value = self._lex_char_body(location)
        if self._peek() != "'":
            raise LexError("unterminated character literal", location)
        self._advance()
        text = self._source[location.column - 1:]  # not used for value
        return Token(TokenKind.CHAR_LITERAL, f"'{chr(value)}'", location, value)

    def _lex_char_body(self, location: SourceLocation) -> int:
        ch = self._peek()
        if not ch or ch == "\n":
            raise LexError("unterminated character literal", location)
        if ch == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                raise LexError(f"unknown escape sequence \\{escape}", location)
            self._advance()
            return _ESCAPES[escape]
        self._advance()
        return ord(ch)

    def _lex_string(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", location)
            if ch == '"':
                self._advance()
                break
            chars.append(chr(self._lex_char_body(location)))
        value = "".join(chars)
        return Token(TokenKind.STRING_LITERAL, f'"{value}"', location, value)


def tokenize(source: str, module_name: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, module_name).tokenize()
