"""Abstract syntax tree for Tiny-C.

The tree is deliberately plain: dataclass nodes with source locations.
Semantic analysis (:mod:`repro.lang.sema`) decorates nodes with resolved
symbols rather than rewriting the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.lang.errors import SourceLocation


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    """An integer or character constant."""

    value: int


@dataclass
class NameExpr(Expr):
    """A reference to a variable or function by name.

    After semantic analysis, ``symbol`` points at the resolved
    :class:`~repro.lang.sema.Symbol`.
    """

    name: str
    symbol: object = None


@dataclass
class UnaryExpr(Expr):
    """Unary operation: one of ``- ! ~ * &``."""

    op: str
    operand: Expr


@dataclass
class BinaryExpr(Expr):
    """Binary operation (arithmetic, bitwise, comparison, logical)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class AssignExpr(Expr):
    """Assignment ``target = value`` or compound ``target op= value``.

    ``op`` is ``None`` for plain assignment, otherwise the arithmetic
    operator of a compound assignment (``+``, ``-``, ...).
    """

    target: Expr
    value: Expr
    op: Optional[str] = None


@dataclass
class IncDecExpr(Expr):
    """``++x``, ``x++``, ``--x``, ``x--``.

    ``delta`` is +1 or -1; ``is_prefix`` selects pre- vs post- semantics.
    """

    target: Expr
    delta: int
    is_prefix: bool


@dataclass
class CallExpr(Expr):
    """A function call.

    A direct call has a :class:`NameExpr` callee that resolves to a function
    symbol; anything else (a pointer-valued expression) is an indirect call.
    After sema, ``is_indirect`` records which case applies.
    """

    callee: Expr
    args: list[Expr]
    is_indirect: bool = False


@dataclass
class IndexExpr(Expr):
    """Array or pointer subscript ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class CondExpr(Expr):
    """Ternary conditional ``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class LocalDecl(Stmt):
    """A local variable declaration.

    Scalars may have an initializer expression.  Arrays have a fixed
    ``array_size`` (in words) and optional constant element initializers.
    """

    name: str
    pointer_level: int = 0
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    array_init: Optional[list[int]] = None
    symbol: object = None


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: Stmt
    else_body: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class ForStmt(Stmt):
    init: Optional[Union[Expr, "LocalDecl"]]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class EmptyStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class TopDecl(Node):
    """Base class for module-level declarations."""


@dataclass
class GlobalVarDecl(TopDecl):
    """A module-level variable definition.

    Attributes:
        name: Source-level name (unqualified; statics are qualified later).
        is_static: C ``static`` — private to the defining module.
        pointer_level: 0 for ``int``, 1 for ``int *``, etc.
        array_size: Element count for arrays, ``None`` for scalars.
        init: Constant scalar initializer value.
        array_init: Constant element initializers for arrays (may be shorter
            than the array; the rest is zero-filled).
    """

    name: str
    is_static: bool = False
    pointer_level: int = 0
    array_size: Optional[int] = None
    init: Optional[int] = None
    array_init: Optional[list[int]] = None


@dataclass
class ExternVarDecl(TopDecl):
    """``extern int name;`` — a reference to a global defined elsewhere."""

    name: str
    pointer_level: int = 0
    is_array: bool = False


@dataclass
class Param(Node):
    name: str
    pointer_level: int = 0


@dataclass
class FunctionDef(TopDecl):
    """A function definition with a body."""

    name: str
    return_type: str  # "int" or "void"
    params: list[Param] = field(default_factory=list)
    body: Optional[Block] = None
    is_static: bool = False


@dataclass
class ExternFuncDecl(TopDecl):
    """A function prototype: ``extern int f(int, int);`` or ``int f(int);``."""

    name: str
    return_type: str
    param_count: int = 0


@dataclass
class Module(Node):
    """One compilation unit: a named list of top-level declarations."""

    name: str
    decls: list[TopDecl] = field(default_factory=list)
