"""Recursive-descent parser for Tiny-C.

The grammar is a restricted C89: ``int``-centric declarations, pointers,
fixed-size arrays, functions, ``static``/``extern`` linkage, and full
structured control flow with C operator precedence.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

# Binary operator precedence, higher binds tighter.  Logical && / || are
# handled here too; short-circuit lowering happens during IR generation.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_BINARY_TOKEN_OPS = {
    TokenKind.OR_OR: "||",
    TokenKind.AND_AND: "&&",
    TokenKind.PIPE: "|",
    TokenKind.CARET: "^",
    TokenKind.AMP: "&",
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.GT: ">",
    TokenKind.LE: "<=",
    TokenKind.GE: ">=",
    TokenKind.LSHIFT: "<<",
    TokenKind.RSHIFT: ">>",
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}

_COMPOUND_ASSIGN_OPS = {
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
    TokenKind.PERCENT_ASSIGN: "%",
}


class Parser:
    """Parses one Tiny-C compilation unit into an :class:`ast.Module`."""

    def __init__(self, tokens: list[Token], module_name: str = "<input>"):
        self._tokens = tokens
        self._pos = 0
        self._module_name = module_name

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        if self._check(kind):
            return self._advance()
        found = self._peek()
        expected = what or kind.value
        raise ParseError(
            f"expected {expected}, found {found.kind.value} {found.text!r}",
            found.location,
        )

    # -- top level ------------------------------------------------------

    def parse_module(self) -> ast.Module:
        """Parse the whole token stream into a module."""
        start = self._peek().location
        decls: list[ast.TopDecl] = []
        while not self._check(TokenKind.EOF):
            decls.extend(self._parse_top_decl())
        return ast.Module(start, self._module_name, decls)

    def _parse_top_decl(self) -> list[ast.TopDecl]:
        if self._accept(TokenKind.KW_EXTERN):
            return self._parse_extern_decl()
        is_static = bool(self._accept(TokenKind.KW_STATIC))
        if self._check(TokenKind.KW_VOID):
            return [self._parse_function("void", is_static)]
        self._expect(TokenKind.KW_INT, "'int', 'void', 'static' or 'extern'")
        # Disambiguate: function definition/prototype vs variable declaration.
        # A function has the shape  int [*]* NAME (  ... .
        save = self._pos
        pointer_level = 0
        while self._accept(TokenKind.STAR):
            pointer_level += 1
        name_token = self._expect(TokenKind.IDENT, "declarator name")
        if self._check(TokenKind.LPAREN):
            self._pos = save
            return [self._parse_function("int", is_static, pointer_level)]
        self._pos = save
        return self._parse_global_vars(is_static)

    def _parse_extern_decl(self) -> list[ast.TopDecl]:
        self._expect(TokenKind.KW_INT, "'int' after 'extern'")
        pointer_level = 0
        while self._accept(TokenKind.STAR):
            pointer_level += 1
        name_token = self._expect(TokenKind.IDENT, "name after 'extern int'")
        if self._check(TokenKind.LPAREN):
            param_count = self._parse_prototype_params()
            self._expect(TokenKind.SEMICOLON)
            return [
                ast.ExternFuncDecl(
                    name_token.location, name_token.text, "int", param_count
                )
            ]
        is_array = False
        if self._accept(TokenKind.LBRACKET):
            # `extern int a[];` or with an ignored size.
            self._accept(TokenKind.INT_LITERAL)
            self._expect(TokenKind.RBRACKET)
            is_array = True
        decls: list[ast.TopDecl] = [
            ast.ExternVarDecl(
                name_token.location, name_token.text, pointer_level, is_array
            )
        ]
        while self._accept(TokenKind.COMMA):
            pointer_level = 0
            while self._accept(TokenKind.STAR):
                pointer_level += 1
            name_token = self._expect(TokenKind.IDENT)
            is_array = False
            if self._accept(TokenKind.LBRACKET):
                self._accept(TokenKind.INT_LITERAL)
                self._expect(TokenKind.RBRACKET)
                is_array = True
            decls.append(
                ast.ExternVarDecl(
                    name_token.location, name_token.text, pointer_level, is_array
                )
            )
        self._expect(TokenKind.SEMICOLON)
        return decls

    def _parse_prototype_params(self) -> int:
        """Parse a prototype parameter list, returning the parameter count."""
        self._expect(TokenKind.LPAREN)
        if self._accept(TokenKind.RPAREN):
            return 0
        if self._check(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
            self._advance()
            self._advance()
            return 0
        count = 0
        while True:
            self._expect(TokenKind.KW_INT, "parameter type")
            while self._accept(TokenKind.STAR):
                pass
            self._accept(TokenKind.IDENT)
            count += 1
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        return count

    def _parse_function(
        self, return_type: str, is_static: bool, _pointer_level: int = 0
    ) -> ast.TopDecl:
        if return_type == "void":
            self._expect(TokenKind.KW_VOID)
        while self._accept(TokenKind.STAR):
            pass
        name_token = self._expect(TokenKind.IDENT, "function name")
        params = self._parse_params()
        if self._accept(TokenKind.SEMICOLON):
            return ast.ExternFuncDecl(
                name_token.location, name_token.text, return_type, len(params)
            )
        for param in params:
            if param.name.startswith("__anon"):
                raise ParseError(
                    "function definition parameters must be named",
                    param.location,
                )
        body = self._parse_block()
        return ast.FunctionDef(
            name_token.location,
            name_token.text,
            return_type,
            params,
            body,
            is_static,
        )

    def _parse_params(self) -> list[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if self._accept(TokenKind.RPAREN):
            return params
        if self._check(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
            self._advance()
            self._advance()
            return params
        index = 0
        while True:
            type_token = self._expect(TokenKind.KW_INT, "parameter type")
            pointer_level = 0
            while self._accept(TokenKind.STAR):
                pointer_level += 1
            name_token = self._accept(TokenKind.IDENT)
            if name_token is not None:
                params.append(
                    ast.Param(
                        name_token.location, name_token.text, pointer_level
                    )
                )
            else:
                # Unnamed parameter: legal in prototypes only; the caller
                # rejects definitions that use one.
                params.append(
                    ast.Param(type_token.location, f"__anon{index}",
                              pointer_level)
                )
            index += 1
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        return params

    def _parse_global_vars(self, is_static: bool) -> list[ast.TopDecl]:
        decls: list[ast.TopDecl] = []
        while True:
            decls.append(self._parse_one_global(is_static))
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMICOLON)
        return decls

    def _parse_one_global(self, is_static: bool) -> ast.GlobalVarDecl:
        pointer_level = 0
        while self._accept(TokenKind.STAR):
            pointer_level += 1
        name_token = self._expect(TokenKind.IDENT, "variable name")
        array_size: Optional[int] = None
        declared_empty_array = False
        if self._accept(TokenKind.LBRACKET):
            if self._check(TokenKind.RBRACKET):
                declared_empty_array = True
            else:
                array_size = self._parse_const_expr_int()
            self._expect(TokenKind.RBRACKET)
        init: Optional[int] = None
        array_init: Optional[list[int]] = None
        if self._accept(TokenKind.ASSIGN):
            if array_size is not None or declared_empty_array:
                array_init = self._parse_array_initializer()
                if array_size is None:
                    array_size = len(array_init)
                elif len(array_init) > array_size:
                    raise ParseError(
                        f"too many initializers for array of {array_size}",
                        name_token.location,
                    )
            else:
                init = self._parse_const_expr_int()
        elif declared_empty_array:
            raise ParseError(
                "array declared with [] requires an initializer",
                name_token.location,
            )
        return ast.GlobalVarDecl(
            name_token.location,
            name_token.text,
            is_static,
            pointer_level,
            array_size,
            init,
            array_init,
        )

    def _parse_array_initializer(self) -> list[int]:
        if self._check(TokenKind.STRING_LITERAL):
            token = self._advance()
            # NUL-terminated, one character per word.
            return [ord(ch) for ch in str(token.value)] + [0]
        self._expect(TokenKind.LBRACE, "'{' or string literal")
        values: list[int] = []
        if not self._check(TokenKind.RBRACE):
            while True:
                values.append(self._parse_const_expr_int())
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RBRACE)
        return values

    def _parse_const_expr_int(self) -> int:
        expr = self.parse_expr()
        return evaluate_const_expr(expr)

    # -- statements -----------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_token = self._expect(TokenKind.LBRACE)
        statements: list[ast.Stmt] = []
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated block", open_token.location)
            statements.extend(self._parse_block_item())
        self._expect(TokenKind.RBRACE)
        return ast.Block(open_token.location, statements)

    def _parse_block_item(self) -> list[ast.Stmt]:
        if self._check(TokenKind.KW_INT):
            return self._parse_local_decls()
        return [self._parse_statement()]

    def _parse_local_decls(self) -> list[ast.Stmt]:
        self._expect(TokenKind.KW_INT)
        decls: list[ast.Stmt] = []
        while True:
            decls.append(self._parse_one_local())
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMICOLON)
        return decls

    def _parse_one_local(self) -> ast.LocalDecl:
        pointer_level = 0
        while self._accept(TokenKind.STAR):
            pointer_level += 1
        name_token = self._expect(TokenKind.IDENT, "variable name")
        array_size: Optional[int] = None
        if self._accept(TokenKind.LBRACKET):
            array_size = self._parse_const_expr_int()
            self._expect(TokenKind.RBRACKET)
        init: Optional[ast.Expr] = None
        array_init: Optional[list[int]] = None
        if self._accept(TokenKind.ASSIGN):
            if array_size is not None:
                array_init = self._parse_array_initializer()
                if len(array_init) > array_size:
                    raise ParseError(
                        f"too many initializers for array of {array_size}",
                        name_token.location,
                    )
            else:
                init = self.parse_assignment()
        return ast.LocalDecl(
            name_token.location,
            name_token.text,
            pointer_level,
            array_size,
            init,
            array_init,
        )

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            value = None
            if not self._check(TokenKind.SEMICOLON):
                value = self.parse_expr()
            self._expect(TokenKind.SEMICOLON)
            return ast.ReturnStmt(token.location, value)
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMICOLON)
            return ast.BreakStmt(token.location)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMICOLON)
            return ast.ContinueStmt(token.location)
        if kind is TokenKind.SEMICOLON:
            self._advance()
            return ast.EmptyStmt(token.location)
        expr = self.parse_expr()
        self._expect(TokenKind.SEMICOLON)
        return ast.ExprStmt(token.location, expr)

    def _parse_if(self) -> ast.IfStmt:
        token = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        then_body = self._parse_statement()
        else_body = None
        if self._accept(TokenKind.KW_ELSE):
            else_body = self._parse_statement()
        return ast.IfStmt(token.location, cond, then_body, else_body)

    def _parse_while(self) -> ast.WhileStmt:
        token = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.WhileStmt(token.location, cond, body)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        token = self._expect(TokenKind.KW_DO)
        body = self._parse_statement()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return ast.DoWhileStmt(token.location, body, cond)

    def _parse_for(self) -> ast.ForStmt:
        token = self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN)
        init: Optional[Union[ast.Expr, ast.LocalDecl]] = None
        if not self._check(TokenKind.SEMICOLON):
            init = self.parse_expr()
        self._expect(TokenKind.SEMICOLON)
        cond = None
        if not self._check(TokenKind.SEMICOLON):
            cond = self.parse_expr()
        self._expect(TokenKind.SEMICOLON)
        step = None
        if not self._check(TokenKind.RPAREN):
            step = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.ForStmt(token.location, init, cond, step, body)

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        """Parse a full expression (assignment level, comma not supported)."""
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        token = self._peek()
        if token.kind is TokenKind.ASSIGN:
            self._advance()
            value = self.parse_assignment()
            return ast.AssignExpr(token.location, left, value, None)
        if token.kind in _COMPOUND_ASSIGN_OPS:
            self._advance()
            value = self.parse_assignment()
            return ast.AssignExpr(
                token.location, left, value, _COMPOUND_ASSIGN_OPS[token.kind]
            )
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        token = self._peek()
        if token.kind is TokenKind.QUESTION:
            self._advance()
            then = self.parse_expr()
            self._expect(TokenKind.COLON)
            otherwise = self._parse_ternary()
            return ast.CondExpr(token.location, cond, then, otherwise)
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            op = _BINARY_TOKEN_OPS.get(token.kind)
            if op is None:
                return left
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryExpr(token.location, op, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.UnaryExpr(token.location, "-", self._parse_unary())
        if token.kind is TokenKind.BANG:
            self._advance()
            return ast.UnaryExpr(token.location, "!", self._parse_unary())
        if token.kind is TokenKind.TILDE:
            self._advance()
            return ast.UnaryExpr(token.location, "~", self._parse_unary())
        if token.kind is TokenKind.STAR:
            self._advance()
            return ast.UnaryExpr(token.location, "*", self._parse_unary())
        if token.kind is TokenKind.AMP:
            self._advance()
            return ast.UnaryExpr(token.location, "&", self._parse_unary())
        if token.kind is TokenKind.PLUS:
            self._advance()
            return self._parse_unary()
        if token.kind is TokenKind.PLUS_PLUS:
            self._advance()
            return ast.IncDecExpr(token.location, self._parse_unary(), 1, True)
        if token.kind is TokenKind.MINUS_MINUS:
            self._advance()
            return ast.IncDecExpr(token.location, self._parse_unary(), -1, True)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.LPAREN:
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(TokenKind.RPAREN):
                    while True:
                        args.append(self.parse_assignment())
                        if not self._accept(TokenKind.COMMA):
                            break
                self._expect(TokenKind.RPAREN)
                expr = ast.CallExpr(token.location, expr, args)
            elif token.kind is TokenKind.LBRACKET:
                self._advance()
                index = self.parse_expr()
                self._expect(TokenKind.RBRACKET)
                expr = ast.IndexExpr(token.location, expr, index)
            elif token.kind is TokenKind.PLUS_PLUS:
                self._advance()
                expr = ast.IncDecExpr(token.location, expr, 1, False)
            elif token.kind is TokenKind.MINUS_MINUS:
                self._advance()
                expr = ast.IncDecExpr(token.location, expr, -1, False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(token.location, int(token.value))
        if token.kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return ast.IntLiteral(token.location, int(token.value))
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.NameExpr(token.location, token.text)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(
            f"expected expression, found {token.kind.value} {token.text!r}",
            token.location,
        )


def evaluate_const_expr(expr: ast.Expr) -> int:
    """Evaluate a constant expression (literals + arithmetic) to an int."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryExpr):
        value = evaluate_const_expr(expr.operand)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(value == 0)
        raise ParseError(f"operator {expr.op!r} not allowed in constant", expr.location)
    if isinstance(expr, ast.BinaryExpr):
        lhs = evaluate_const_expr(expr.lhs)
        rhs = evaluate_const_expr(expr.rhs)
        return _apply_const_binop(expr.op, lhs, rhs, expr)
    raise ParseError("expression is not constant", expr.location)


def _apply_const_binop(op: str, lhs: int, rhs: int, expr: ast.Expr) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise ParseError("division by zero in constant", expr.location)
        return int(lhs / rhs) if (lhs < 0) != (rhs < 0) else lhs // rhs
    if op == "%":
        if rhs == 0:
            raise ParseError("division by zero in constant", expr.location)
        return lhs - rhs * (int(lhs / rhs) if (lhs < 0) != (rhs < 0) else lhs // rhs)
    if op == "<<":
        return lhs << rhs
    if op == ">>":
        return lhs >> rhs
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "&&":
        return int(bool(lhs) and bool(rhs))
    if op == "||":
        return int(bool(lhs) or bool(rhs))
    raise ParseError(f"operator {op!r} not allowed in constant", expr.location)


def parse_module(source: str, module_name: str = "<input>") -> ast.Module:
    """Lex and parse ``source`` into a module AST."""
    return Parser(tokenize(source, module_name), module_name).parse_module()
