"""Threaded-code simulator backend: decoded instructions compiled to
specialized Python closures.

The reference backend (:meth:`repro.machine.simulator.Simulator._run_reference`)
pays, per dynamic instruction, for tuple indexing, a ~40-way ``if/elif``
dispatch chain, and attribute-based counter updates.  This backend
removes all three:

* the decoded stream is partitioned into **extended basic blocks**
  (leaders are the program entry, function entries, branch/call
  targets, and call-return sites; a block additionally extends through
  the fall-through edge of conditional branches, so straight-line
  regions separated only by forward branches compile into one closure);
* each block is compiled — once per executable and accounting
  configuration — into one specialized Python closure with every
  operand, cost, and stats increment folded in as a constant at
  compile time; registers touched more than once are hoisted into
  Python locals for the duration of the block and written back at
  every exit;
* a conditional (or unconditional) branch back to its own block head
  compiles into a real Python ``while`` loop, so tight simulated loops
  run without any per-iteration dispatch, register traffic, or counter
  writes (totals are reconstructed from the iteration count on exit);
* the run loop chains closures directly: each block *returns the next
  block's closure* (threaded code), and the driver is just
  ``block = block()``.

Accounting stays **bit-identical** to the reference backend.  Cycle,
instruction, and memory-reference counters are committed per block exit
(the per-instruction order of counter updates is unobservable: results
only escape through :class:`ExecutionStats` on a normal HALT).  The one
place per-block accounting could diverge observably is the cycle
budget: the reference interpreter raises
:class:`~repro.machine.simulator.ExecutionLimitExceeded` *after
charging* the instruction that crosses the limit and *before executing
it*.  Each compiled block (and each compiled loop iteration) therefore
pre-checks whether its worst-case cost could cross the budget and, if
so, hands the remainder of the run to :func:`_reference_tail` — a
verbatim port of the reference interpreter operating on the shared
machine state — so faults and the limit exception land on the
identical instruction boundary with the identical message.  (This
assumes non-negative per-instruction costs, which every
:class:`~repro.machine.simulator.CostModel` satisfies: any partial
path through a block costs no more than the whole block.)

On top of the block structure the compiler runs block-local
optimizations, all semantics-preserving by construction:

* **constant propagation** — a per-block lattice (seeded with the
  architecturally-zero r0) folds immediates through moves, arithmetic
  (with the exact wrap/mask semantics), comparisons, and branch
  conditions; loads and stores whose address is known compile to a
  direct ``memory[addr]`` index with the bounds check resolved at
  compile time (an out-of-range constant address compiles to the
  reference backend's exact fault).  The lattice resets at loop-body
  heads (values do not survive the backedge) and joins diamond arms by
  intersection;
* **one-sided wrap checks** — an add/sub whose second operand's sign
  is known (every immediate, plus lattice-known registers) can wrap in
  only one direction, so the other range check is dropped;
* **dead-store elimination** — a constant store provably overwritten
  before any read (folding leaves these behind, e.g. the defining
  ``LDI`` of a folded address or the return-pointer store of a
  canceled call) is removed by a conservative straight-line scan;
* **lazy slot accounting** — when per-procedure attribution is off,
  straight blocks commit only the cycle counter eagerly (the budget
  pre-check needs it) and bump one per-exit-site counter for the rest;
  load/store/singleton/save-restore totals are reconstructed from the
  exit-site counts once, at HALT or on handoff to the reference tail.

Per-procedure attribution (``track``) and calling-convention checking
(``check``) are compiled in only when requested: the unobserved
configuration costs nothing at run time.

Entering the middle of a block (only possible by returning through a
corrupted return pointer) falls back to lazily compiling a suffix block
for that program counter, so arbitrary control flow keeps the exact
reference semantics.
"""

from __future__ import annotations

import re
import weakref
from dataclasses import astuple

from repro.machine.simulator import (
    _ADD,
    _ADDI,
    _AND,
    _ANDI,
    _B,
    _BEQ,
    _BGE,
    _BGT,
    _BL,
    _BLE,
    _BLR,
    _BLT,
    _BNE,
    _CEQ,
    _CGE,
    _CGT,
    _CLE,
    _CLT,
    _CNE,
    _DIV,
    _DIVI,
    _HALT,
    _LDI,
    _LDW,
    _MOV,
    _MUL,
    _MULI,
    _OR,
    _ORI,
    _PRINT,
    _PUTC,
    _REM,
    _REMI,
    _RET,
    _SLL,
    _SLLI,
    _SRA,
    _SRAI,
    _STW,
    _SUB,
    _SUBI,
    _XOR,
    _XORI,
    ConventionViolation,
    ExecutionLimitExceeded,
    ExecutionStats,
    MachineError,
    ProcedureStats,
    _flush_proc,
)
from repro.obs.tracer import current_tracer
from repro.target.registers import NUM_REGISTERS, RP, RV, SP


class _Halted(Exception):
    """Internal control-flow signal: the program executed HALT."""


# Add/sub of two in-range (sign-extended 32-bit) values overflows by at
# most one wrap of 2**32, so a compare-and-adjust replaces the reference
# backend's mask (which allocates a big int for the 2**32-1 constant on
# every execution).  Multiplication can wrap many times and keeps the
# mask.
_WRAP_BIN = {_ADD: "+", _SUB: "-"}
_WRAP_BIN_IMM = {_ADDI: "+", _SUBI: "-"}
_MASK_BIN = {_MUL: "*"}
_MASK_BIN_IMM = {_MULI: "*"}
# Bitwise ops and arithmetic shift right of two in-range (sign-extended
# 32-bit) values are closed over the 32-bit range, so the reference
# backend's mask + sign-fix is the identity and is elided here.
_CLOSED_BIN = {_AND: "&", _OR: "|", _XOR: "^"}
_CLOSED_BIN_IMM = {_ANDI: "&", _ORI: "|", _XORI: "^"}
_CMP_PY = {_CEQ: "==", _CNE: "!=", _CLT: "<", _CLE: "<=",
           _CGT: ">", _CGE: ">="}
_BC_PY = {_BEQ: "==", _BNE: "!=", _BLT: "<", _BLE: "<=",
          _BGT: ">", _BGE: ">="}
_CMP_FOLD = {
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
}

# Stop extending a block through conditional fall-throughs once it has
# this many instructions (bounds generated-code size; correctness does
# not depend on the value).
_MAX_BLOCK = 64

# Hoist a register into a Python local when a straight-line block
# touches it at least this many times (loop bodies always hoist).
_HOIST_MIN_USES = 2

# Longest taken arm (in instructions) an if-diamond will inline.
_MAX_ARM = 24


def _find_leaders(decoded: list, executable) -> set:
    """Program counters at which a basic block may begin."""
    n = len(decoded)
    leaders = {executable.entry_pc}
    leaders.update(executable.function_entries.values())
    for index, op in enumerate(decoded):
        code = op[0]
        if code == _B:
            leaders.add(op[2])
        elif _BEQ <= code <= _BGE:
            leaders.add(op[4])
            leaders.add(index + 1)
        elif code == _BL:
            leaders.add(op[2])
            leaders.add(index + 1)
        elif code == _BLR:
            # Indirect targets are function entries (already leaders);
            # the return site follows the call.
            leaders.add(index + 1)
    return {pc for pc in leaders if 0 <= pc < n}


def _preserved_registers(clobbers, volatile) -> tuple:
    """The registers a convention-checked call must leave untouched."""
    return tuple(
        i for i in range(NUM_REGISTERS)
        if i != RP and i not in clobbers and i not in volatile
    )


def _op_counts(op) -> list:
    """Counter deltas charged by one instruction:
    [cycles, instructions, loads, stores, singleton_loads,
    singleton_stores, save_restore]."""
    counts = [op[1], 1, 0, 0, 0, 0, 0]
    code = op[0]
    if code == _LDW:
        counts[2] = 1
        if op[5]:
            counts[4] = 1
        if op[6]:
            counts[6] = 1
    elif code == _STW:
        counts[3] = 1
        if op[5]:
            counts[5] = 1
        if op[6]:
            counts[6] = 1
    return counts


def _add_counts(total: list, delta: list) -> None:
    for slot in range(7):
        total[slot] += delta[slot]


_CONST_STORE = re.compile(r"^(\s*)(r\d+) = -?\d+$")
_CONTROL_LINE = re.compile(r"^\s*(return|raise|break|continue)\b")


def _peephole(lines: list) -> list:
    """Drop constant stores to hoisted locals that are provably
    overwritten before any read.  (Constant folding leaves the
    defining store of ``LDI rX / LDW rX, [rX]`` pairs and of canceled
    calls' return-pointer updates dead.)

    The scan is linear and conservative: a pending store survives only
    across statements of the same suite at the same indentation —
    any control transfer (a ``return``/``raise``/``continue``/
    ``break``, a header line ending in ``:``, or an indentation
    change) forgets it, so a store is only removed when the straight
    line between it and the overwrite can neither read the local nor
    branch away.  Locals are only readable by name, so a textual
    occurrence check captures every read (including writebacks)."""
    drop: set = set()
    pending: dict = {}  # dest -> (line_index, indent)
    for i, line in enumerate(lines):
        if line.rstrip().endswith(":") or _CONTROL_LINE.match(line):
            pending.clear()
            continue
        if not pending:
            m = _CONST_STORE.match(line)
            if m:
                pending[m.group(2)] = (i, m.group(1))
            continue
        indent = line[: len(line) - len(line.lstrip())]
        for dest, (j, ind) in list(pending.items()):
            if ind != indent:
                del pending[dest]
                continue
            head = f"{indent}{dest} = "
            if line.startswith(head):
                if not re.search(
                    rf"(?<!\w){re.escape(dest)}(?!\w)", line[len(head):]
                ):
                    drop.add(j)
                del pending[dest]
            elif re.search(rf"(?<!\w){re.escape(dest)}(?!\w)", line):
                del pending[dest]
        m = _CONST_STORE.match(line)
        if m:
            pending[m.group(2)] = (i, m.group(1))
    return [line for i, line in enumerate(lines) if i not in drop]


class _BlockCompiler:
    """Emits the Python source of one extended-basic-block closure."""

    def __init__(self, program: "_CompiledProgram", local_starts):
        self.program = program
        self.local_starts = local_starts
        self.hoisted: set = set()
        self.written: set = set()
        self.iter_totals: list = [0] * 7
        self.open_frames: list = []
        self.loop_edge_sites: list = []
        self.loop_batched_sites: set = set()
        self.entry_loads: set = set()
        self.written_so_far: set = set()
        self.diamonds: dict = {}
        self.skip_slots: tuple = ()
        self.budget_extra: int = 0
        # Block-local constant lattice: register -> known int value at
        # the current emission point.  r0 is architecturally zero (the
        # reference backend never writes it).
        self.const: dict = {0: 0}

    # ------------------------------------------------------------------
    # scanning

    def _scan(self, start: int):
        """Collect the instructions of the extended block at ``start``.

        Returns ``(items, loop, inline)`` where ``items`` is a list of
        ``(pc, op)`` pairs, ``loop`` says the final item branches back
        to ``start`` (compile the block as a ``while`` loop; the
        backedge is conditional iff that final op is a BC), and
        ``inline`` maps an item index to ``("call", frame)`` for a BL
        whose callee is scanned straight through, or ``("ret", frame)``
        for the matching RET.  A ``frame`` records the callee name, the
        static return site, whether the scan closed the call (reached
        its RET), and whether the region between call and return is
        *RP-clean* — no instruction in it writes the return-pointer
        register.  A closed clean call provably returns to its static
        return site, so codegen can drop the return-address guard and
        cancel the call stack push against the return's pop entirely.

        Direct calls are threaded through only when per-procedure
        attribution is off: attribution flushes counters at every call
        boundary, which would force a commit mid-block and defeat the
        batching.
        """
        program = self.program
        decoded = program.decoded
        n = program.n
        inline_calls = not program.track
        items: list = []
        inline: dict = {}
        open_frames: list = []
        seen: set = set()
        pc = start
        while True:
            seen.add(pc)
            op = decoded[pc]
            code = op[0]
            items.append((pc, op))
            if code == _BL:
                # BL writes RP: every already-open call region is dirty.
                for frame in open_frames:
                    frame["clean"] = False
                if (inline_calls and len(items) < _MAX_BLOCK
                        and 0 <= op[2] < n):
                    # Re-entering already-scanned pcs just duplicates
                    # them in ``items`` (each scan step appends an item,
                    # so the block cap still bounds the scan — including
                    # through direct recursion).
                    frame = {"name": op[3], "ret_pc": pc + 1,
                             "clean": True, "closed": False}
                    inline[len(items) - 1] = ("call", frame)
                    open_frames.append(frame)
                    pc = op[2]
                    continue
                return items, False, inline
            if code == _RET:
                if open_frames and len(items) < _MAX_BLOCK:
                    frame = open_frames[-1]
                    ret_pc = frame["ret_pc"]
                    if 0 <= ret_pc < n:
                        open_frames.pop()
                        frame["closed"] = True
                        inline[len(items) - 1] = ("ret", frame)
                        pc = ret_pc
                        continue
                return items, False, inline
            if code == _BLR:
                for frame in open_frames:
                    frame["clean"] = False
                return items, False, inline
            if code == _HALT:
                return items, False, inline
            if open_frames and op[2] == RP and code not in (_B, _STW):
                # Every other opcode's op[2] is a destination register
                # (compare/branch codes were handled above or below and
                # PRINT/PUTC only read): a write to RP dirties every
                # open call region.
                for frame in open_frames:
                    frame["clean"] = False
            if code == _B:
                if op[2] == start:
                    return items, True, inline
                if (op[2] in seen or len(items) >= _MAX_BLOCK
                        or not 0 <= op[2] < n):
                    return items, False, inline
                # Jump-threading: the branch is free at run time — keep
                # emitting straight through its target.
                pc = op[2]
                continue
            if _BEQ <= code <= _BGE:
                if op[4] == start:
                    return items, True, inline
                if len(items) >= _MAX_BLOCK or pc + 1 >= n:
                    # Cap (or end of code): emit both edges of this BC
                    # and stop.
                    return items, False, inline
                pc += 1
                continue
            pc += 1
            if pc >= n or pc in seen or len(items) >= _MAX_BLOCK:
                # Leaders do NOT stop the scan: a block falling through
                # into another block's head duplicates its tail (the
                # head keeps its own closure for incoming jumps), which
                # trades code size for one less dispatch per boundary.
                return items, False, inline

    # ------------------------------------------------------------------
    # if-diamonds

    def _find_diamonds(self, items: list, inline: dict, loop: bool,
                       start: int) -> dict:
        """Map BC item index -> ``(join index, taken-arm ops)`` for
        conditional branches whose taken edge rejoins the scan path
        later in this block after at most ``_MAX_ARM`` straight-line
        instructions, and whose skipped fall-path region is pure
        straight-line code (no control transfers, no inline call/ret
        markers).  Such a branch compiles to a structured ``if``/
        ``else`` instead of a block exit: whichever arm runs, the
        difference against the linearly-charged fall path goes into
        ``sk`` compensation counters that every later commit
        subtracts.  Unconditional jumps inside the taken arm are
        threaded through (charged, no code), so plain if/else
        diamonds — where the else arm ends in a jump to the join —
        qualify."""
        diamonds: dict = {}
        decoded = self.program.decoded
        n = self.program.n
        pcs = [pc for pc, _ in items]
        for i in range(len(items) - 1):
            op = items[i][1]
            if not _BEQ <= op[0] <= _BGE:
                continue
            target = op[4]
            if loop and target == start:
                # A second backedge: keep it a real exit so the
                # iteration counter stays well-defined.
                continue
            # First later occurrence of each pc on the fall path.
            later: dict = {}
            for k in range(len(items) - 1, i, -1):
                later[pcs[k]] = k
            arm: list = []
            join = None
            pc = target
            for _ in range(_MAX_ARM):
                if pc in later:
                    join = later[pc]
                    break
                if not 0 <= pc < n:
                    break
                aop = decoded[pc]
                acode = aop[0]
                if acode == _B:
                    arm.append(aop)
                    pc = aop[2]
                    continue
                if (acode in (_BL, _BLR, _RET, _HALT)
                        or _BEQ <= acode <= _BGE):
                    break
                arm.append(aop)
                pc += 1
            if join is None:
                continue
            pure = True
            for k in range(i + 1, join):
                kcode = items[k][1][0]
                if (kcode in (_B, _BL, _BLR, _RET, _HALT)
                        or _BEQ <= kcode <= _BGE or k in inline):
                    pure = False
                    break
            if pure:
                diamonds[i] = (join, arm)
        return diamonds

    # ------------------------------------------------------------------
    # register analysis

    def _analyze(self, items: list, loop: bool,
                 skip_indices: frozenset = frozenset(),
                 diamonds: dict | None = None) -> None:
        """Choose the registers to hoist into Python locals.

        Straight-line blocks hoist registers touched at least twice
        (break-even: one subscript at entry/exit versus one per use);
        loop blocks hoist every register they touch, since the body
        repeats.  ``r0`` is never written (codegen skips writes to the
        hardwired zero register), so it never needs writing back.

        Straight blocks additionally skip the entry load for hoisted
        registers whose first access is a write: straight-line order
        guarantees every later read is dominated by that write, and
        exits before it never write the register back (``_writeback``
        covers only registers written so far).  Loop bodies repeat, so
        they keep full entry loads and writebacks.

        ``skip_indices`` marks items inside an if-diamond's skipped
        fall-path region and ``diamonds`` supplies each diamond's
        taken-arm instructions (walked in program position, right
        after their branch): a write on either conditional path does
        not dominate later reads, so it classifies as read-first (the
        entry load stays).
        """
        reads: dict = {}
        writes: dict = {}
        first_is_read: dict = {}
        guarded = False

        def read(i):
            reads[i] = reads.get(i, 0) + 1
            if i not in first_is_read:
                first_is_read[i] = True

        def write(i):
            if i:
                writes[i] = writes.get(i, 0) + 1
                if i not in first_is_read:
                    first_is_read[i] = guarded

        sequence = []
        for index, (_pc, op) in enumerate(items):
            sequence.append((index in skip_indices, op))
            if diamonds and index in diamonds:
                sequence.extend((True, aop) for aop in diamonds[index][1])
        for guarded, op in sequence:
            code = op[0]
            if code == _LDW:
                read(op[3])
                write(op[2])
            elif code == _STW:
                read(op[3])
                read(op[2])
            elif code == _LDI:
                write(op[2])
            elif code == _MOV:
                read(op[3])
                write(op[2])
            elif (code in (_ADD, _SUB, _MUL, _DIV, _REM, _AND, _OR,
                           _XOR, _SLL, _SRA)
                  or _CEQ <= code <= _CGE):
                read(op[3])
                read(op[4])
                write(op[2])
            elif code in (_ADDI, _SUBI, _MULI, _DIVI, _REMI, _ANDI,
                          _ORI, _XORI, _SLLI, _SRAI):
                read(op[3])
                write(op[2])
            elif code in (_PRINT, _PUTC):
                read(op[2])
            elif _BEQ <= code <= _BGE:
                read(op[2])
                read(op[3])
            elif code == _BLR:
                read(op[2])
                write(RP)
            elif code == _BL:
                write(RP)
            elif code == _RET:
                read(RP)
            # _B, _HALT: no register operands.

        threshold = 1 if loop else _HOIST_MIN_USES
        self.hoisted = {
            i for i in set(reads) | set(writes)
            if reads.get(i, 0) + writes.get(i, 0) >= threshold
        }
        self.written = {i for i in self.hoisted if writes.get(i, 0)}
        if loop:
            self.entry_loads = set(self.hoisted)
        else:
            self.entry_loads = {
                i for i in self.hoisted if first_is_read.get(i, False)
            }

    def reg(self, i: int) -> str:
        return f"r{i}" if i in self.hoisted else f"regs[{i}]"

    @staticmethod
    def _lit(v: int) -> str:
        return str(v) if v >= 0 else f"({v})"

    def val(self, i: int) -> str:
        """Read expression for register ``i``: its literal value when
        the constant lattice knows it, its storage location otherwise."""
        v = self.const.get(i)
        return self.reg(i) if v is None else self._lit(v)

    def _writeback(self) -> list:
        return [f"regs[{i}] = r{i}" for i in sorted(self.written_so_far)]

    # ------------------------------------------------------------------
    # counter commits

    def _commit(self, prefix: list, loop: bool) -> list:
        """Lines that fold the executed path's counter deltas into
        ``ctr``.  In loop form, ``c0`` holds the cycle counter at loop
        entry and ``it`` the completed-iteration count; ``prefix`` is
        the partial path through the current iteration.  Slots with
        if-diamond compensation subtract the (signed) ``sk`` counter —
        the linear prefix charges the fall-path arm, and taken arms
        adjust ``sk`` by the per-slot difference."""
        out = []
        first = 2 if self.program.uniform else 1

        def expr(slot, per_iter):
            terms = []
            if loop and per_iter:
                terms.append(f"it * {per_iter}")
            if prefix[slot]:
                terms.append(str(prefix[slot]))
            joined = " + ".join(terms)
            if slot in self.skip_slots:
                joined = f"{joined} - sk{slot}" if joined else f"-sk{slot}"
            return joined

        if loop:
            cycles = expr(0, self.iter_totals[0])
            out.append(f"ctr[0] = c0 + {cycles}" if cycles
                       else "ctr[0] = c0")
            for slot in range(first, 7):
                value = expr(slot, self.iter_totals[slot])
                if value:
                    out.append(f"ctr[{slot}] += {value}")
        elif self.program.track:
            out.append(f"ctr[0] += {expr(0, 0) or 0}")
            for slot in range(first, 7):
                value = expr(slot, 0)
                if value:
                    out.append(f"ctr[{slot}] += {value}")
        else:
            # Lazy: one execution-count bump covers slots 1..6 (the
            # static per-exit totals are folded in at reconstruction;
            # diamond arms correct ``ctr`` directly, so no sk counters
            # exist for these slots).
            out.append(f"ctr[0] += {expr(0, 0) or 0}")
            totals = tuple(
                prefix[slot] if slot >= first else 0
                for slot in range(1, 7)
            )
            if any(totals):
                out.append(f"ec[{self.program.exit_site(totals)}] += 1")
        return out

    def _canceled(self, frame: dict) -> bool:
        """A closed inlined call's stack push cancels against its
        return's pop, so neither is emitted; escapes in between
        materialize the pending entries instead.  An RP-clean region
        additionally drops the return-address guard.  (Convention
        checking keeps the physical frames it snapshots registers
        into, so nothing is canceled there.)"""
        return frame["closed"] and not self.program.check

    def _loop_edge_lines(self, exit_idx: int) -> list:
        """Batched call-edge commits for a loop exit emitted after item
        ``exit_idx``: sites before it also ran in the current partial
        iteration."""
        lines = []
        pending = []
        for key, idx in self.loop_edge_sites:
            if idx < exit_idx:
                lines.append(f"call_edges[{key}] += it + 1")
            else:
                pending.append(key)
        if pending:
            # Guarded: ``Counter[k] += 0`` would materialize a zero
            # entry the reference backend never creates.
            lines.append("if it:")
            for key in pending:
                lines.append(f"    call_edges[{key}] += it")
        return lines

    def _exit_lines(self, prefix: list, loop: bool, exit_idx: int) -> list:
        """Everything a mid-block escape must flush: counters, batched
        loop call edges, deferred call-stack entries, hoisted
        registers."""
        lines = self._commit(prefix, loop)
        if loop:
            lines += self._loop_edge_lines(exit_idx)
        names = tuple(
            f["name"] for f in self.open_frames if self._canceled(f)
        )
        if names:
            lines.append(f"call_stack.extend({names!r})")
        lines += self._writeback()
        return lines

    # ------------------------------------------------------------------
    # control-transfer targets

    def _target(self, pc: int) -> str:
        if pc in self.local_starts:
            return f"_b{pc}"
        return f"goto({pc})"

    # ------------------------------------------------------------------
    # per-instruction bodies (non-control instructions)

    def _signfix(self, body: list, expr: str, rd: int) -> None:
        body.append(f"v = ({expr}) & 4294967295")
        body.append("if v > 2147483647:")
        body.append("    v -= 4294967296")
        if rd:
            body.append(f"{self.reg(rd)} = v")

    def _signfix_wrap(
        self, body: list, expr: str, rd: int, direction: str = "both"
    ) -> None:
        """Sign fix for a result at most one wrap out of range.

        ``direction`` narrows the check when the sign of one operand is
        known: an add of a positive constant can only overflow, of a
        negative one only underflow, and adding zero needs no check.
        """
        dest = self.reg(rd) if rd in self.hoisted else "v"
        body.append(f"{dest} = {expr}")
        if direction in ("both", "over"):
            body.append(f"if {dest} > 2147483647:")
            body.append(f"    {dest} -= 4294967296")
        if direction == "both":
            body.append(f"elif {dest} < -2147483648:")
            body.append(f"    {dest} += 4294967296")
        elif direction == "under":
            body.append(f"if {dest} < -2147483648:")
            body.append(f"    {dest} += 4294967296")
        if rd not in self.hoisted:
            body.append(f"{self.reg(rd)} = v")

    def _instr_lines(self, op) -> list:
        program = self.program
        code = op[0]
        rd = op[2]
        if (code not in (_STW, _PRINT, _PUTC) and rd
                and rd in self.hoisted):
            # Every remaining opcode writes op[2]; later exits must
            # write the hoisted local back.
            self.written_so_far.add(rd)
        const = self.const
        body: list = []
        if code == _LDW:
            known = const.get(op[3])
            if rd:
                const.pop(rd, None)
            if known is not None:
                # Constant base: the bounds check resolves at compile
                # time (the static raise keeps the fault at the same
                # execution point as the reference check).
                address = known + op[4]
                if not 0 <= address < program.memory_words:
                    body.append(
                        "raise MachineError("
                        f"'load from bad address {address}')"
                    )
                elif rd:
                    body.append(f"{self.reg(rd)} = memory[{address}]")
                return body
            base_expr = self.reg(op[3])
            addr = f"{base_expr} + {op[4]}" if op[4] else base_expr
            body.append(f"a = {addr}")
            body.append(f"if not 0 <= a < {program.memory_words}:")
            body.append(
                "    raise MachineError('load from bad address %d' % a)"
            )
            if rd:
                body.append(f"{self.reg(rd)} = memory[a]")
        elif code == _STW:
            known = const.get(op[3])
            if known is not None:
                address = known + op[4]
                if not program.base <= address < program.memory_words:
                    body.append(
                        "raise MachineError("
                        f"'store to bad address {address}')"
                    )
                else:
                    body.append(f"memory[{address}] = {self.val(rd)}")
                return body
            base_expr = self.reg(op[3])
            addr = f"{base_expr} + {op[4]}" if op[4] else base_expr
            body.append(f"a = {addr}")
            body.append(
                f"if not {program.base} <= a < {program.memory_words}:"
            )
            body.append(
                "    raise MachineError('store to bad address %d' % a)"
            )
            body.append(f"memory[a] = {self.val(rd)}")
        elif code == _LDI:
            if rd:
                const[rd] = op[3]
                body.append(f"{self.reg(rd)} = {op[3]}")
        elif code == _MOV:
            if rd:
                known = const.get(op[3])
                if known is not None:
                    const[rd] = known
                    body.append(f"{self.reg(rd)} = {self._lit(known)}")
                else:
                    const.pop(rd, None)
                    body.append(f"{self.reg(rd)} = {self.reg(op[3])}")
        elif code in _WRAP_BIN or code in _WRAP_BIN_IMM:
            if rd:
                imm = code in _WRAP_BIN_IMM
                sym = _WRAP_BIN_IMM[code] if imm else _WRAP_BIN[code]
                a = const.get(op[3])
                b = op[4] if imm else const.get(op[4])
                if a is not None and b is not None:
                    v = a + b if sym == "+" else a - b
                    if v > 2147483647:
                        v -= 4294967296
                    elif v < -2147483648:
                        v += 4294967296
                    const[rd] = v
                    body.append(f"{self.reg(rd)} = {self._lit(v)}")
                else:
                    const.pop(rd, None)
                    rhs = f"({op[4]})" if imm else self.val(op[4])
                    if sym == "+":
                        known = a if a is not None else b
                    else:
                        known = -b if b is not None else None
                    if known is None:
                        direction = "both"
                    elif known > 0:
                        direction = "over"
                    elif known < 0:
                        direction = "under"
                    else:
                        direction = "none"
                    self._signfix_wrap(
                        body, f"{self.val(op[3])} {sym} {rhs}", rd,
                        direction,
                    )
        elif code in _MASK_BIN or code in _MASK_BIN_IMM:
            if rd:
                imm = code in _MASK_BIN_IMM
                a = const.get(op[3])
                b = op[4] if imm else const.get(op[4])
                if a is not None and b is not None:
                    v = (a * b) & 4294967295
                    if v > 2147483647:
                        v -= 4294967296
                    const[rd] = v
                    body.append(f"{self.reg(rd)} = {self._lit(v)}")
                else:
                    const.pop(rd, None)
                    rhs = f"({op[4]})" if imm else self.val(op[4])
                    self._signfix(body, f"{self.val(op[3])} * {rhs}", rd)
        elif code in _CLOSED_BIN or code in _CLOSED_BIN_IMM:
            if rd:
                imm = code in _CLOSED_BIN_IMM
                sym = _CLOSED_BIN_IMM[code] if imm else _CLOSED_BIN[code]
                a = const.get(op[3])
                b = op[4] if imm else const.get(op[4])
                if a is not None and b is not None:
                    if sym == "&":
                        v = a & b
                    elif sym == "|":
                        v = a | b
                    else:
                        v = a ^ b
                    const[rd] = v
                    body.append(f"{self.reg(rd)} = {self._lit(v)}")
                else:
                    const.pop(rd, None)
                    rhs = f"({op[4]})" if imm else self.val(op[4])
                    body.append(
                        f"{self.reg(rd)} = {self.val(op[3])} {sym} {rhs}"
                    )
        elif code in (_SLL, _SLLI):
            if rd:
                a = const.get(op[3])
                b = op[4] if code == _SLLI else const.get(op[4])
                if a is not None and b is not None:
                    v = (a << (b & 31)) & 4294967295
                    if v > 2147483647:
                        v -= 4294967296
                    const[rd] = v
                    body.append(f"{self.reg(rd)} = {self._lit(v)}")
                else:
                    const.pop(rd, None)
                    shift = (f"{op[4] & 31}" if code == _SLLI
                             else f"({self.val(op[4])} & 31)")
                    self._signfix(
                        body, f"{self.val(op[3])} << {shift}", rd
                    )
        elif code in (_SRA, _SRAI):
            if rd:
                a = const.get(op[3])
                b = op[4] if code == _SRAI else const.get(op[4])
                if a is not None and b is not None:
                    const[rd] = a >> (b & 31)
                    body.append(
                        f"{self.reg(rd)} = {self._lit(const[rd])}"
                    )
                else:
                    const.pop(rd, None)
                    shift = (f"{op[4] & 31}" if code == _SRAI
                             else f"({self.val(op[4])} & 31)")
                    body.append(
                        f"{self.reg(rd)} = {self.val(op[3])} >> {shift}"
                    )
        elif code in (_DIV, _REM):
            if rd:
                const.pop(rd, None)
            self._emit_divrem(body, op, code == _REM)
        elif code in (_DIVI, _REMI):
            if rd:
                const.pop(rd, None)
            self._emit_divrem_imm(body, op, code == _REMI)
        elif code in _CMP_PY:
            if rd:
                a = const.get(op[3])
                b = const.get(op[4])
                sym = _CMP_PY[code]
                if a is not None and b is not None:
                    const[rd] = 1 if _CMP_FOLD[sym](a, b) else 0
                    body.append(f"{self.reg(rd)} = {const[rd]}")
                else:
                    const.pop(rd, None)
                    body.append(
                        f"{self.reg(rd)} = 1 if "
                        f"{self.val(op[3])} {sym} {self.val(op[4])} "
                        f"else 0"
                    )
        elif code == _PRINT:
            known = const.get(op[2])
            if known is not None:
                body.append(f"output.append({str(known)!r})")
            else:
                body.append(f"output.append(str({self.reg(op[2])}))")
            body.append("output.append('\\n')")
        elif code == _PUTC:
            known = const.get(op[2])
            if known is not None:
                body.append(f"output.append({chr(known & 255)!r})")
            else:
                body.append(f"output.append(chr({self.reg(op[2])} & 255))")
        else:  # pragma: no cover - control ops handled by the walker
            raise MachineError(f"cannot compile opcode {code}")
        return body

    def _emit_divrem(self, body: list, op, is_rem: bool) -> None:
        fault = "remainder by zero" if is_rem else "division by zero"
        if not op[2]:
            body.append(f"if {self.val(op[4])} == 0:")
            body.append(f"    raise MachineError('{fault}')")
            return
        body.append(f"a = {self.val(op[3])}")
        body.append(f"b = {self.val(op[4])}")
        body.append("if b == 0:")
        body.append(f"    raise MachineError('{fault}')")
        if is_rem:
            body.append("q = abs(a) // abs(b)")
            body.append("if (a < 0) != (b < 0):")
            body.append("    q = -q")
            self._signfix(body, "a - q * b", op[2])
        else:
            body.append("v = abs(a) // abs(b)")
            body.append("if (a < 0) != (b < 0):")
            body.append("    v = -v")
            self._signfix(body, "v", op[2])

    def _emit_divrem_imm(self, body: list, op, is_rem: bool) -> None:
        imm = op[4]
        fault = "remainder by zero" if is_rem else "division by zero"
        if imm == 0:
            body.append(f"raise MachineError('{fault}')")
            return
        if not op[2]:
            return
        negate = "if a < 0:" if imm > 0 else "if a >= 0:"
        body.append(f"a = {self.val(op[3])}")
        if is_rem:
            body.append(f"q = abs(a) // {abs(imm)}")
            body.append(negate)
            body.append("    q = -q")
            self._signfix(body, f"a - q * ({imm})", op[2])
        else:
            body.append(f"v = abs(a) // {abs(imm)}")
            body.append(negate)
            body.append("    v = -v")
            self._signfix(body, "v", op[2])

    # ------------------------------------------------------------------
    # terminators

    def _emit_call(self, out: list, prefix: list, loop: bool,
                   return_pc: int, callee: str, clobbers,
                   target: str) -> None:
        """Call sequence shared by BL (constant callee) and BLR
        (``callee``/``target`` are expressions over run state); order
        matches the reference backend exactly: counters committed
        before the per-procedure flush, registers written back before
        the convention frame snapshots them."""
        out.extend(self._commit(prefix, loop))
        if RP in self.hoisted:
            out.append(f"r{RP} = {return_pc}")
            self.written_so_far.add(RP)
        out.extend(self._writeback())
        if RP not in self.hoisted:
            out.append(f"regs[{RP}] = {return_pc}")
        out.append(f"call_edges[(call_stack[-1], {callee})] += 1")
        if self.program.track:
            out.append("flush(call_stack[-1])")
        out.append(f"call_stack.append({callee})")
        if self.program.check:
            preserved = _preserved_registers(clobbers, self.program.volatile)
            out.append(
                f"frames.append(({return_pc}, {callee}, {preserved!r}, "
                f"[regs[i] for i in {preserved!r}]))"
            )
        out.append(f"return {target}")

    def _emit_terminator(self, out: list, pc: int, op, prefix: list,
                         loop: bool) -> None:
        """The last item of a non-backedge block: a control transfer,
        HALT, a both-edges BC (cap stop), or a plain fall-through."""
        code = op[0]
        if code == _B:
            out.extend(self._commit(prefix, loop))
            out.extend(self._writeback())
            out.append(f"return {self._target(op[2])}")
        elif _BEQ <= code <= _BGE:
            exit_lines = self._commit(prefix, loop) + self._writeback()
            out.append(
                f"if {self.val(op[2])} {_BC_PY[code]} {self.val(op[3])}:"
            )
            out.extend("    " + line for line in exit_lines)
            out.append(f"    return {self._target(op[4])}")
            out.extend(exit_lines)
            out.append(f"return {self._target(pc + 1)}")
        elif code == _BL:
            self._emit_call(out, prefix, loop, return_pc=pc + 1,
                            callee=repr(op[3]), clobbers=op[4],
                            target=self._target(op[2]))
        elif code == _BLR:
            out.append(f"t = {self.val(op[2])}")
            out.append("name = entry_names.get(t)")
            out.append("if name is None:")
            out.append(
                "    raise MachineError("
                "'indirect call to non-function address %d' % t)"
            )
            # Indirect targets are function entries, which are leaders:
            # their dispatch slots are filled eagerly.
            self._emit_call(out, prefix, loop, return_pc=pc + 1,
                            callee="name", clobbers=op[3],
                            target="dispatch[t]")
        elif code == _RET:
            out.extend(self._commit(prefix, loop))
            out.extend(self._writeback())
            if self.program.track:
                out.append("flush(call_stack[-1])")
            out.append("if len(call_stack) > 1:")
            out.append("    call_stack.pop()")
            out.append(f"p = {self.val(RP)}")
            if self.program.check:
                out.append("ret_check(p)")
            out.append(f"nb = dispatch[p] if 0 <= p < {self.program.n} "
                       f"else None")
            out.append("if nb is None:")
            out.append("    return goto(p)")
            out.append("return nb")
        elif code == _HALT:
            out.extend(self._commit(prefix, loop))
            out.extend(self._writeback())
            out.append("raise Halted")
        else:
            # Plain fall-through: the next pc is a leader (or past the
            # end of the code, which goto faults on exactly like the
            # reference backend's bounds check).
            out.extend(self._instr_lines(op))
            out.extend(self._commit(prefix, loop))
            out.extend(self._writeback())
            out.append(f"return {self._target(pc + 1)}")

    # ------------------------------------------------------------------
    # block emission

    def _emit_inline_call(self, out: list, pc: int, op, frame: dict,
                          loop: bool, index: int) -> None:
        """A BL whose callee continues inline: only the observable
        bookkeeping is emitted — control never leaves the closure.
        Deferred (closed RP-clean) calls skip the stack push — it
        cancels against the matching return's pop — and in loops their
        call-edge increments are batched across iterations."""
        callee = repr(frame["name"])
        if RP in self.hoisted:
            out.append(f"r{RP} = {pc + 1}")
            self.written_so_far.add(RP)
        else:
            out.append(f"regs[{RP}] = {pc + 1}")
        self.const[RP] = pc + 1
        if self._canceled(frame):
            if loop and index in self.loop_batched_sites:
                # Counted once per loop exit via _loop_edge_lines.
                pass
            elif self.open_frames:
                # The logical caller is the innermost open inline frame
                # — a compile-time constant, letting the key tuple fold.
                # (Canceled open frames are not on the physical stack,
                # so call_stack[-1] would be wrong here.)
                caller = repr(self.open_frames[-1]["name"])
                out.append(f"call_edges[({caller}, {callee})] += 1")
            else:
                # No open frame: the physical stack top is the logical
                # caller.
                out.append(f"call_edges[(call_stack[-1], {callee})] += 1")
        else:
            out.append(f"call_edges[(call_stack[-1], {callee})] += 1")
            out.append(f"call_stack.append({callee})")
            if self.program.check:
                out.extend(self._writeback())
                preserved = _preserved_registers(
                    op[4], self.program.volatile
                )
                out.append(
                    f"frames.append(({pc + 1}, {callee}, {preserved!r}, "
                    f"[regs[i] for i in {preserved!r}]))"
                )
        self.open_frames.append(frame)

    def _emit_inline_ret(self, out: list, frame: dict, prefix: list,
                         loop: bool, exit_idx: int) -> None:
        """A RET inside an inlined call: execution continues at the
        statically known return site unless the program returns
        somewhere else (corrupted return pointer), in which case the
        block is left through the generic dispatch path.  For an
        RP-clean canceled call the return site is provably correct, so
        nothing is emitted at all; a dirty canceled call keeps only the
        guard (its push/pop pair is still discharged statically)."""
        self.open_frames.pop()
        if self._canceled(frame):
            if frame["clean"]:
                return
            ret_pc = frame["ret_pc"]
            if self.const.get(RP) == ret_pc:
                # The dirtying write provably restored the return
                # pointer: the guard can never fire.
                return
            fail = self._exit_lines(prefix, loop, exit_idx)
            out.append(f"if {self.val(RP)} != {ret_pc}:")
            out.extend("    " + line for line in fail)
            out.append(f"    return goto({self.val(RP)})")
            return
        ret_pc = frame["ret_pc"]
        out.append("if len(call_stack) > 1:")
        out.append("    call_stack.pop()")
        fail = self._exit_lines(prefix, loop, exit_idx)
        if self.program.check:
            out.extend(self._writeback())
            out.append(f"p = {self.val(RP)}")
            out.append("ret_check(p)")
            out.append(f"if p != {ret_pc}:")
            out.extend("    " + line for line in fail)
            out.append("    return goto(p)")
        elif self.const.get(RP) != ret_pc:
            out.append(f"if {self.val(RP)} != {ret_pc}:")
            out.extend("    " + line for line in fail)
            out.append(f"    return goto({self.val(RP)})")

    def _prescan_loop_edges(self, items: list, inline: dict):
        """Static walk over a loop body's inline markers: collect the
        canceled call sites whose edge increments can be batched per
        loop exit (recorded in ``loop_batched_sites``), and whether any
        needs the dynamic caller hoisted into ``cs`` before the loop.

        A site with an enclosing open frame has a compile-time caller
        and always batches.  A site with no open frame reads the
        physical stack top — hoistable into ``cs`` only when no
        unclosed (physical) call marker in the body shifts the stack
        top between iterations; otherwise the site falls back to a
        per-iteration dynamic increment."""
        sites: list = []
        needs_cs = False
        open_f: list = []
        self.loop_batched_sites = set()
        has_unclosed = any(
            marker[0] == "call" and not marker[1]["closed"]
            for marker in inline.values()
        )
        for idx in range(len(items)):
            marker = inline.get(idx)
            if marker is None:
                continue
            kind, frame = marker
            if kind == "call":
                if self._canceled(frame):
                    if open_f:
                        caller = repr(open_f[-1]["name"])
                    elif not has_unclosed:
                        caller = "cs"
                        needs_cs = True
                    else:
                        caller = None
                    if caller is not None:
                        self.loop_batched_sites.add(idx)
                        sites.append(
                            (f"({caller}, {frame['name']!r})", idx)
                        )
                open_f.append(frame)
            else:
                open_f.pop()
        return sites, needs_cs

    def _emit_diamond(self, out: list, op, items: list, index: int,
                      join: int, arm: list, prefix: list,
                      loop: bool) -> None:
        """Emit a BC whose taken edge rejoins at ``join`` as a
        structured if/else.  The linear ``prefix`` charges the
        fall-path region as if executed; the taken path runs the arm's
        ops and adjusts ``sk`` by the per-slot difference between the
        two arms (signed — the taken arm may charge more)."""
        fall_dx = [0] * 7
        arm_dx = [0] * 7
        # The condition reads pre-branch state; both paths start from a
        # snapshot of the constant lattice and only values they agree
        # on survive the join.
        cond = f"{self.val(op[2])} {_BC_PY[op[0]]} {self.val(op[3])}"
        entry_const = dict(self.const)
        fall_lines: list = []
        for k in range(index + 1, join):
            kop = items[k][1]
            _add_counts(prefix, _op_counts(kop))
            _add_counts(fall_dx, _op_counts(kop))
            fall_lines.extend(self._instr_lines(kop))
        fall_const = self.const
        self.const = dict(entry_const)
        taken: list = []
        for aop in arm:
            _add_counts(arm_dx, _op_counts(aop))
            if aop[0] != _B:  # threaded jumps are charged, code-free
                taken.extend(self._instr_lines(aop))
        arm_const = self.const
        self.const = {
            k: v for k, v in fall_const.items()
            if arm_const.get(k) == v
        }
        lazy = not loop and not self.program.track
        for s in self.skip_slots:
            net = fall_dx[s] - arm_dx[s]
            if net == 0:
                continue
            if s and lazy:
                # Lazy slots have no sk counters: the taken arm adjusts
                # ``ctr`` away from the fall-path total directly.
                if net > 0:
                    taken.append(f"ctr[{s}] -= {net}")
                else:
                    taken.append(f"ctr[{s}] += {-net}")
            elif net > 0:
                taken.append(f"sk{s} += {net}")
            else:
                taken.append(f"sk{s} -= {-net}")
        if taken and fall_lines:
            out.append(f"if {cond}:")
            out.extend("    " + line for line in taken)
            out.append("else:")
            out.extend("    " + line for line in fall_lines)
        elif taken:
            out.append(f"if {cond}:")
            out.extend("    " + line for line in taken)
        elif fall_lines:
            out.append(f"if not ({cond}):")
            out.extend("    " + line for line in fall_lines)
        # Both paths empty and charge-identical: the branch is a
        # run-time no-op.

    def _emit_items(self, out: list, items: list, inline: dict,
                    prefix: list, loop: bool) -> None:
        """Emit every item but the last; conditional branches inside
        the block become if-diamonds where the taken edge rejoins the
        block, inline early exits otherwise."""
        skip_until = 0
        for index, (pc, op) in enumerate(items[:-1]):
            if index < skip_until:
                continue
            _add_counts(prefix, _op_counts(op))
            code = op[0]
            diamond = self.diamonds.get(index)
            if diamond is not None:
                join, arm = diamond
                self._emit_diamond(out, op, items, index, join, arm,
                                   prefix, loop)
                skip_until = join
                continue
            threaded = inline.get(index)
            if threaded is not None:
                if threaded[0] == "call":
                    self._emit_inline_call(out, pc, op, threaded[1], loop,
                                           index)
                else:
                    self._emit_inline_ret(out, threaded[1], prefix, loop,
                                          index)
                continue
            if code == _B:
                # Jump-threaded: charged above, no code — execution
                # continues at the branch target inline.
                continue
            if _BEQ <= code <= _BGE:
                exit_lines = self._exit_lines(prefix, loop, index)
                out.append(
                    f"if {self.val(op[2])} {_BC_PY[code]} "
                    f"{self.val(op[3])}:"
                )
                out.extend("    " + line for line in exit_lines)
                out.append(f"    return {self._target(op[4])}")
            else:
                out.extend(self._instr_lines(op))

    def block_source(self, start: int) -> list:
        """Body lines (unindented) of the closure for the extended
        block at ``start``."""
        items, loop, inline = self._scan(start)
        self.diamonds = self._find_diamonds(items, inline, loop, start)
        skip_indices = frozenset(
            k for i, (j, _arm) in self.diamonds.items()
            for k in range(i + 1, j)
        )
        # Slots whose fall-path and taken-arm charges differ need a
        # compensation counter; the budget checks use a per-path
        # ceiling (taken arms may cost more cycles than the linearly
        # charged fall path — overshoot only ever hands the run to the
        # reference-exact slow path early, never late).
        slots = set()
        extra = 0
        for i, (j, arm) in self.diamonds.items():
            fall_dx = [0] * 7
            arm_dx = [0] * 7
            for k in range(i + 1, j):
                _add_counts(fall_dx, _op_counts(items[k][1]))
            for aop in arm:
                _add_counts(arm_dx, _op_counts(aop))
            extra += max(0, arm_dx[0] - fall_dx[0])
            for s in range(7):
                if fall_dx[s] != arm_dx[s]:
                    slots.add(s)
        if self.program.uniform:
            slots.discard(1)
        self.skip_slots = tuple(sorted(slots))
        self.budget_extra = extra
        self._analyze(items, loop, skip_indices, self.diamonds)
        totals = [0] * 7
        for _pc, op in items:
            _add_counts(totals, _op_counts(op))
        self.iter_totals = totals
        self.open_frames = []
        self.loop_edge_sites = []
        self.loop_batched_sites = set()
        out: list = []
        if not loop:
            self.written_so_far = set()
            ceiling = totals[0] + self.budget_extra
            out.append(f"if ctr[0] + {ceiling} > limit:")
            out.append(f"    return slow({start})")
            for i in sorted(self.entry_loads):
                out.append(f"r{i} = regs[{i}]")
            for s in self.skip_slots:
                if s == 0 or self.program.track:
                    out.append(f"sk{s} = 0")
            prefix = [0] * 7
            self.const = {0: 0}
            self._emit_items(out, items, inline, prefix, loop=False)
            last_pc, last_op = items[-1]
            _add_counts(prefix, _op_counts(last_op))
            self._emit_terminator(out, last_pc, last_op, prefix, loop=False)
            return out

        # Loop form: the final item branches back to ``start``.  ``c0``
        # holds the cycle counter at entry, ``it`` the completed
        # iterations; every exit reconstructs the counters (and the
        # batched call edges) from per-iteration totals.  The cycle
        # budget reduces to a precomputed iteration bound ``_A`` over
        # the per-iteration cycle ceiling T (fall path plus any
        # costlier taken arms; without diamonds the bound is exact —
        # the reference check fails first at iteration
        # ``(limit - c0) // T``, and with them it can only fire early,
        # handing off to the reference-exact slow path).  A zero
        # ceiling can never cross the budget and drops the check
        # entirely.
        self.loop_edge_sites, needs_cs = self._prescan_loop_edges(
            items, inline
        )
        # Prior iterations may have written any hoisted register, so
        # every loop exit writes back the full written set.
        self.written_so_far = set(self.written)
        t0 = totals[0] + self.budget_extra
        body: list = []
        prefix = [0] * 7
        # Values learned in one iteration don't survive the backedge:
        # the lattice restarts at the body head.
        self.const = {0: 0}
        self._emit_items(body, items, inline, prefix, loop=True)
        back_pc, back_op = items[-1]
        code = back_op[0]
        if _BEQ <= code <= _BGE:
            body.append(
                f"if {self.val(back_op[2])} {_BC_PY[code]} "
                f"{self.val(back_op[3])}:"
            )
            body.append("    it += 1")
            body.append("    continue")
            body.append("break")
        else:  # unconditional backedge (B to start): no loop exit
            body.append("it += 1")
        head: list = []
        if t0:
            head.append("if it >= _A:")
            limit_exit = (
                self._commit([0] * 7, loop=True)
                + self._loop_edge_lines(0)
                + self._writeback()
            )
            head.extend("    " + line for line in limit_exit)
            head.append(f"    return slow({start})")
        for i in sorted(self.hoisted):
            out.append(f"r{i} = regs[{i}]")
        for s in self.skip_slots:
            out.append(f"sk{s} = 0")
        if needs_cs:
            out.append("cs = call_stack[-1]")
        out.append("c0 = ctr[0]")
        if t0:
            out.append(f"_A = (limit - c0) // {t0}")
        out.append("it = 0")
        out.append("while True:")
        out.extend("    " + line for line in head)
        out.extend("    " + line for line in body)
        if _BEQ <= code <= _BGE:
            # Fall-through exit: the final iteration ran in full.
            out.extend(self._commit(totals, loop=True))
            out.extend(self._loop_edge_lines(len(items)))
            out.extend(self._writeback())
            out.append(f"return {self._target(back_pc + 1)}")
        return out


class _CompiledProgram:
    """One executable compiled for one accounting configuration."""

    def __init__(self, simulator, track: bool, check: bool):
        self.decoded = simulator._decoded
        self.n = len(self.decoded)
        self.executable = simulator.executable
        self.entry_pc = simulator.executable.entry_pc
        self.base = simulator.executable.data_base
        self.memory_words = simulator.memory_words
        self.entry_names = simulator._entry_names
        self.volatile = simulator.volatile_registers
        self.track = track
        self.check = check
        # Uniform cost model: cycles ≡ instructions, so blocks commit
        # only ctr[0] and the instruction counter is recovered by copy.
        # Per-procedure attribution reads ctr[1] mid-run (flush), so it
        # keeps both counters live.
        self.uniform = (not track) and all(
            op[1] == 1 for op in self.decoded
        )
        self.leaders = _find_leaders(self.decoded, simulator.executable)
        # Lazy slot accounting (non-attributed runs): straight-block
        # exits bump one per-site execution counter instead of
        # committing every counter slot; the per-site static totals
        # (slots 1..6) recorded here are folded into ``ctr`` once, at
        # HALT or before a reference-tail handoff.
        self.exit_totals: list = []
        self._exit_index: dict = {}
        self._suffix_factories: dict = {}
        self.factory = self._compile(sorted(self.leaders))

    def exit_site(self, totals: tuple) -> int:
        """Index of the lazy-commit site for ``totals`` (slots 1..6),
        shared by every exit charging the same deltas."""
        idx = self._exit_index.get(totals)
        if idx is None:
            idx = self._exit_index[totals] = len(self.exit_totals)
            self.exit_totals.append(totals)
        return idx

    def _compile(self, starts: list):
        """exec one factory holding the closures for every ``starts``
        block; calling the factory binds them to one run's state."""
        compiler = _BlockCompiler(self, frozenset(starts))
        lines = [
            "def _factory(regs, memory, ctr, output, call_stack,",
            "             call_counts, call_edges, limit, slow, flush,",
            "             frames, ret_check, entry_names, dispatch,",
            "             goto, Halted, MachineError, ec):",
        ]
        for start in starts:
            lines.append(f"    def _b{start}():")
            for line in _peephole(compiler.block_source(start)):
                lines.append("        " + line)
        lines.append(
            "    return {"
            + ", ".join(f"{start}: _b{start}" for start in starts)
            + "}"
        )
        namespace: dict = {}
        exec(  # noqa: S102 - source is generated from the decoded stream
            compile("\n".join(lines), "<repro-sim-compiled>", "exec"),
            namespace,
        )
        return namespace["_factory"]

    def suffix_factory(self, pc: int):
        """Factory for a block entered mid-straight-line (a return to a
        non-leader pc); compiled on demand and cached."""
        factory = self._suffix_factories.get(pc)
        if factory is None:
            factory = self._suffix_factories[pc] = self._compile([pc])
        return factory

    def run(self, simulator, max_cycles: int, tracer) -> ExecutionStats:
        stats = ExecutionStats()
        regs = [0] * NUM_REGISTERS
        memory = [0] * self.memory_words
        base = self.base
        data_words = self.executable.data_words
        memory[base:base + len(data_words)] = data_words
        regs[SP] = self.memory_words
        output: list = []
        call_stack = ["<stub>"]
        # cycles, instructions, loads, stores, singleton_loads,
        # singleton_stores, save_restore — committed per block exit.
        ctr = [0, 0, 0, 0, 0, 0, 0]
        per_proc: dict = {}
        marks = [0, 0, 0, 0, 0]
        frames: list | None = [] if self.check else None
        n = self.n

        def flush(name):
            _flush_proc(per_proc, name, ctr[0], ctr[1], ctr[2], ctr[3],
                        ctr[6], marks)

        def ret_check(pc):
            if frames:
                ret_pc, callee, preserved, values = frames.pop()
                if ret_pc == pc:
                    for register, value in zip(preserved, values):
                        if regs[register] != value:
                            raise ConventionViolation(
                                f"call to {callee} destroyed "
                                f"register r{register} "
                                f"({value} -> {regs[register]}) "
                                f"not in its clobber set"
                            )
                else:  # pragma: no cover - no tail calls exist
                    frames.append((ret_pc, callee, preserved, values))

        # Compiled blocks record only call_edges; call_counts is the
        # per-callee marginal of the edge counter and is reconstructed
        # once — either at HALT or before handing the run to the
        # reference tail (which maintains both incrementally).
        reconstructed = [False]

        def reconstruct_counts():
            reconstructed[0] = True
            counts = stats.call_counts
            for (_caller, callee), count in stats.call_edges.items():
                counts[callee] += count
            site_totals = self.exit_totals
            for idx, count in enumerate(ec):
                if count:
                    t = site_totals[idx]
                    for s in range(6):
                        if t[s]:
                            ctr[s + 1] += count * t[s]

        def slow(pc):
            # The cycle budget may run out inside the next block (or
            # loop iteration): finish the run with reference-exact
            # per-instruction stepping so the limit (or an earlier
            # fault) lands on the same instruction boundary.  Never
            # returns normally.
            reconstruct_counts()
            if self.uniform:
                ctr[1] = ctr[0]
            _reference_tail(self, pc, max_cycles, regs, memory, ctr,
                            output, call_stack, stats, per_proc, marks,
                            frames)

        dispatch: list = [None] * n

        def goto(pc):
            if not 0 <= pc < n:
                raise MachineError(f"pc out of range: {pc}")
            block = dispatch[pc]
            if block is None:
                factory = self.suffix_factory(pc)
                # Compiling a suffix can register new lazy-commit
                # sites; grow this run's counter list in place before
                # the new closures can execute.
                grow = len(self.exit_totals) - len(ec)
                if grow > 0:
                    ec.extend([0] * grow)
                block = factory(*factory_args)[pc]
                dispatch[pc] = block
            return block

        ec: list = [0] * len(self.exit_totals)
        factory_args = (
            regs, memory, ctr, output, call_stack, stats.call_counts,
            stats.call_edges, max_cycles, slow, flush, frames, ret_check,
            self.entry_names, dispatch, goto, _Halted, MachineError, ec,
        )
        for start, closure in self.factory(*factory_args).items():
            dispatch[start] = closure

        block = goto(self.entry_pc)
        try:
            while True:
                block = block()
        except _Halted:
            pass

        if not reconstructed[0]:
            reconstruct_counts()
        if self.uniform:
            # ctr[1] was elided during block execution; under a uniform
            # cost model it equals the cycle counter.  (After a
            # reference tail both are live and already equal.)
            ctr[1] = ctr[0]
        stats.cycles = ctr[0]
        stats.instructions = ctr[1]
        stats.loads = ctr[2]
        stats.stores = ctr[3]
        stats.singleton_loads = ctr[4]
        stats.singleton_stores = ctr[5]
        stats.save_restore_executed = ctr[6]
        stats.output = "".join(output)
        stats.exit_code = regs[RV]
        if self.track:
            # Final flush: instructions since the last call boundary
            # (including the HALT itself) belong to the procedure on top
            # of the stack.
            flush(call_stack[-1])
            stats.per_procedure = {
                name: ProcedureStats(*entry)
                for name, entry in sorted(per_proc.items())
            }
            if tracer.enabled:
                tracer.event(
                    "execution",
                    cycles=stats.cycles,
                    instructions=stats.instructions,
                    memory_references=stats.memory_references,
                    singleton_references=stats.singleton_references,
                    save_restore_executed=stats.save_restore_executed,
                    exit_code=stats.exit_code,
                    per_procedure={
                        name: {
                            "cycles": entry[0],
                            "instructions": entry[1],
                            "loads": entry[2],
                            "stores": entry[3],
                            "save_restore": entry[4],
                        }
                        for name, entry in sorted(per_proc.items())
                    },
                )
        return stats


def _reference_tail(program: _CompiledProgram, pc: int, max_cycles: int,
                    regs: list, memory: list, ctr: list, output: list,
                    call_stack: list, stats: ExecutionStats,
                    per_proc: dict, marks: list,
                    check_frames: list | None) -> None:
    """Reference-exact per-instruction stepping over the shared state.

    A verbatim port of ``Simulator._run_reference``'s inner loop used
    for the end of a run, when the next block's cycle cost could cross
    ``max_cycles``.  Raises :class:`ExecutionLimitExceeded` (or an
    earlier :class:`MachineError` / :class:`ConventionViolation`) on
    exactly the boundary the reference backend would; on HALT it writes
    the counters back and raises :class:`_Halted`.
    """
    decoded = program.decoded
    code_size = program.n
    base = program.base
    memory_words = program.memory_words
    entry_names = program.entry_names
    volatile = program.volatile
    track = program.track
    call_counts = stats.call_counts
    call_edges = stats.call_edges
    (cycles, instructions, loads, stores, singleton_loads,
     singleton_stores, save_restore) = ctr

    while True:
        if not 0 <= pc < code_size:
            raise MachineError(f"pc out of range: {pc}")
        op = decoded[pc]
        code = op[0]
        cycles += op[1]
        instructions += 1
        if cycles > max_cycles:
            raise ExecutionLimitExceeded(
                f"exceeded {max_cycles} cycles"
            )
        if code == _LDW:
            address = regs[op[3]] + op[4]
            if not 0 <= address < memory_words:
                raise MachineError(f"load from bad address {address}")
            if op[2]:
                regs[op[2]] = memory[address]
            loads += 1
            if op[5]:
                singleton_loads += 1
            if op[6]:
                save_restore += 1
            pc += 1
        elif code == _STW:
            address = regs[op[3]] + op[4]
            if not base <= address < memory_words:
                raise MachineError(f"store to bad address {address}")
            memory[address] = regs[op[2]]
            stores += 1
            if op[5]:
                singleton_stores += 1
            if op[6]:
                save_restore += 1
            pc += 1
        elif code == _ADD or code == _ADDI:
            value = (regs[op[3]] + (regs[op[4]] if code == _ADD else op[4])) & 0xFFFFFFFF
            if value > 0x7FFFFFFF:
                value -= 0x100000000
            if op[2]:
                regs[op[2]] = value
            pc += 1
        elif code == _SUB or code == _SUBI:
            value = (regs[op[3]] - (regs[op[4]] if code == _SUB else op[4])) & 0xFFFFFFFF
            if value > 0x7FFFFFFF:
                value -= 0x100000000
            if op[2]:
                regs[op[2]] = value
            pc += 1
        elif code == _LDI:
            if op[2]:
                regs[op[2]] = op[3]
            pc += 1
        elif code == _MOV:
            if op[2]:
                regs[op[2]] = regs[op[3]]
            pc += 1
        elif _BEQ <= code <= _BGE:
            a = regs[op[2]]
            b = regs[op[3]]
            if code == _BEQ:
                taken = a == b
            elif code == _BNE:
                taken = a != b
            elif code == _BLT:
                taken = a < b
            elif code == _BLE:
                taken = a <= b
            elif code == _BGT:
                taken = a > b
            else:
                taken = a >= b
            pc = op[4] if taken else pc + 1
        elif code == _B:
            pc = op[2]
        elif _CEQ <= code <= _CGE:
            a = regs[op[3]]
            b = regs[op[4]]
            if code == _CEQ:
                value = int(a == b)
            elif code == _CNE:
                value = int(a != b)
            elif code == _CLT:
                value = int(a < b)
            elif code == _CLE:
                value = int(a <= b)
            elif code == _CGT:
                value = int(a > b)
            else:
                value = int(a >= b)
            if op[2]:
                regs[op[2]] = value
            pc += 1
        elif _MUL <= code <= _SRA or _MULI <= code <= _SRAI:
            a = regs[op[3]]
            b = regs[op[4]] if code <= _SRA else op[4]
            if code == _MUL or code == _MULI:
                value = a * b
            elif code == _DIV or code == _DIVI:
                if b == 0:
                    raise MachineError("division by zero")
                value = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    value = -value
            elif code == _REM or code == _REMI:
                if b == 0:
                    raise MachineError("remainder by zero")
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                value = a - quotient * b
            elif code == _AND or code == _ANDI:
                value = a & b
            elif code == _OR or code == _ORI:
                value = a | b
            elif code == _XOR or code == _XORI:
                value = a ^ b
            elif code == _SLL or code == _SLLI:
                value = a << (b & 31)
            else:  # arithmetic shift right
                value = a >> (b & 31)
            value &= 0xFFFFFFFF
            if value > 0x7FFFFFFF:
                value -= 0x100000000
            if op[2]:
                regs[op[2]] = value
            pc += 1
        elif code == _BL:
            regs[RP] = pc + 1
            target = op[2]
            callee = op[3]
            call_counts[callee] += 1
            call_edges[(call_stack[-1], callee)] += 1
            if track:
                _flush_proc(per_proc, call_stack[-1], cycles,
                            instructions, loads, stores,
                            save_restore, marks)
            call_stack.append(callee)
            if check_frames is not None:
                preserved = [
                    i for i in range(NUM_REGISTERS)
                    if i != RP and i not in op[4] and i not in volatile
                ]
                check_frames.append(
                    (pc + 1, callee, preserved,
                     [regs[i] for i in preserved])
                )
            pc = target
        elif code == _BLR:
            target = regs[op[2]]
            callee = entry_names.get(target)
            if callee is None:
                raise MachineError(
                    f"indirect call to non-function address {target}"
                )
            regs[RP] = pc + 1
            call_counts[callee] += 1
            call_edges[(call_stack[-1], callee)] += 1
            if track:
                _flush_proc(per_proc, call_stack[-1], cycles,
                            instructions, loads, stores,
                            save_restore, marks)
            call_stack.append(callee)
            if check_frames is not None:
                preserved = [
                    i for i in range(NUM_REGISTERS)
                    if i != RP and i not in op[3] and i not in volatile
                ]
                check_frames.append(
                    (pc + 1, callee, preserved,
                     [regs[i] for i in preserved])
                )
            pc = target
        elif code == _RET:
            if track:
                _flush_proc(per_proc, call_stack[-1], cycles,
                            instructions, loads, stores,
                            save_restore, marks)
            if len(call_stack) > 1:
                call_stack.pop()
            pc = regs[RP]
            if check_frames is not None and check_frames:
                ret_pc, callee, preserved, values = check_frames.pop()
                if ret_pc == pc:
                    for register, value in zip(preserved, values):
                        if regs[register] != value:
                            raise ConventionViolation(
                                f"call to {callee} destroyed "
                                f"register r{register} "
                                f"({value} -> {regs[register]}) "
                                f"not in its clobber set"
                            )
                else:  # pragma: no cover - no tail calls exist
                    check_frames.append(
                        (ret_pc, callee, preserved, values)
                    )
        elif code == _PRINT:
            output.append(str(regs[op[2]]))
            output.append("\n")
            pc += 1
        elif code == _PUTC:
            output.append(chr(regs[op[2]] & 0xFF))
            pc += 1
        elif code == _HALT:
            break
        else:  # pragma: no cover
            raise MachineError(f"bad opcode {code}")

    ctr[0] = cycles
    ctr[1] = instructions
    ctr[2] = loads
    ctr[3] = stores
    ctr[4] = singleton_loads
    ctr[5] = singleton_stores
    ctr[6] = save_restore
    raise _Halted


# Compiled programs cached per executable so repeated runs (and
# repeated Simulator constructions over the same executable, as
# ``run_executable`` does) skip codegen.  Guarded against in-place
# mutation of the executable (e.g. tests that corrupt instructions
# between runs) by comparing the freshly decoded stream against the
# cached one.
_PROGRAM_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def run_compiled(simulator, max_cycles: int) -> ExecutionStats:
    """Execute ``simulator``'s program on the threaded-code backend."""
    tracer = current_tracer()
    track = (
        tracer.enabled
        if simulator.procedure_stats is None
        else simulator.procedure_stats
    )
    check = simulator.check_conventions
    key = (bool(track), bool(check))
    program = simulator._compiled_cache.get(key)
    if program is None:
        cache_key = (
            key[0], key[1], simulator.memory_words,
            astuple(simulator.costs), simulator.volatile_registers,
        )
        try:
            per_exe = _PROGRAM_CACHE.setdefault(simulator.executable, {})
        except TypeError:  # pragma: no cover - unweakrefable executable
            per_exe = {}
        program = per_exe.get(cache_key)
        if program is None or program.decoded != simulator._decoded:
            program = _CompiledProgram(simulator, key[0], key[1])
            per_exe[cache_key] = program
        simulator._compiled_cache[key] = program
    return program.run(simulator, max_cycles, tracer)
