"""PRISM machine simulator and profiler."""

from repro.machine.profiler import ProfileData
from repro.machine.simulator import (
    ConventionViolation,
    CostModel,
    ExecutionLimitExceeded,
    ExecutionStats,
    MachineError,
    Simulator,
    run_executable,
)

__all__ = [
    "ConventionViolation",
    "CostModel",
    "ExecutionLimitExceeded",
    "ExecutionStats",
    "MachineError",
    "ProfileData",
    "Simulator",
    "run_executable",
]
