"""gprof-equivalent profile data (paper section 6.1).

The paper's prototype optionally feeds actual run-time call counts to the
program analyzer.  Our simulator records the same information natively;
this module packages it as :class:`ProfileData` and provides the
profile-collection helper used by configurations B and F of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.simulator import ExecutionStats


@dataclass
class ProfileData:
    """Dynamic call-graph profile: node and edge call counts."""

    call_counts: dict = field(default_factory=dict)  # callee -> count
    call_edges: dict = field(default_factory=dict)  # (caller, callee) -> count

    @classmethod
    def from_stats(cls, stats: ExecutionStats) -> "ProfileData":
        """Extract the profile from a simulation run."""
        return cls(
            call_counts=dict(stats.call_counts),
            call_edges={
                edge: count
                for edge, count in stats.call_edges.items()
                if edge[0] != "<stub>"
            },
        )

    def edge_count(self, caller: str, callee: str) -> int:
        return self.call_edges.get((caller, callee), 0)

    def node_count(self, name: str) -> int:
        return self.call_counts.get(name, 0)
