"""PRISM machine simulator.

Executes a linked :class:`~repro.linker.link.Executable` and collects the
paper's metrics:

* **cycles** — one per instruction by default (a configurable cost model
  can charge more for multiplies/divides); cache effects are not modelled,
  matching the paper's "excluding cache miss penalties";
* **memory references** — dynamic load/store counts, split into
  *singleton* references (accesses of simple scalar variables, including
  register save/restore traffic) and the rest (array elements, pointer
  dereferences) for Table 5;
* **call counts and call edges** — the gprof-equivalent profile that can
  be fed back into the program analyzer.

The machine is Harvard-style and word-addressed: instruction indices and
data addresses are separate spaces.  Reads of the guard region below the
data base return zero; writes there are errors, as are out-of-range
accesses.

Execution is delegated to one of two pluggable backends behind the
:class:`Simulator` facade (see ``docs/SIMULATOR.md``):

* ``reference`` — instructions are pre-decoded into flat tuples with
  integer opcodes and an interpreter loop dispatches on those.  This is
  the semantic baseline every other backend must match bit for bit.
* ``compiled`` — the threaded-code backend in
  :mod:`repro.machine.compiled`: basic blocks of decoded instructions
  are compiled to specialized Python closures (operands, costs, and
  stats increments folded in as constants) chained by returned program
  counters, with a reference-semantics tail interpreter taking over
  near the cycle limit so faults and :class:`ExecutionLimitExceeded`
  land on the identical instruction boundary.

The default backend is ``compiled``; set ``REPRO_SIM=reference`` (or
pass ``backend=``) to select explicitly.  All arithmetic matches
:mod:`repro.ir.arith` (32-bit two's complement, C semantics).
"""

from __future__ import annotations

import os

from collections import Counter
from dataclasses import dataclass, field

from repro.linker.link import Executable
from repro.obs.tracer import current_tracer
from repro.target import costs, isa
from repro.target.registers import NUM_REGISTERS, RP, RV, SP

_WORD_MASK = 0xFFFFFFFF
_INT_MAX = 0x7FFFFFFF

#: Execution backends selectable via ``Simulator(backend=...)`` or the
#: ``REPRO_SIM`` environment variable.
BACKENDS = ("compiled", "reference")
DEFAULT_BACKEND = "compiled"


def resolve_backend(backend: str | None = None) -> str:
    """Validate an explicit backend name or fall back to ``REPRO_SIM``.

    ``None`` consults the ``REPRO_SIM`` environment variable and then
    the module default, so one environment knob steers every simulation
    in the process (convenience wrappers, profiling runs, benchmarks).
    """
    name = backend or os.environ.get("REPRO_SIM") or DEFAULT_BACKEND
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulator backend {name!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    return name


class MachineError(Exception):
    """Raised for runtime faults (bad address, division by zero...)."""


class ExecutionLimitExceeded(MachineError):
    """Raised when the cycle budget is exhausted."""


@dataclass
class CostModel:
    """Cycles charged per instruction category."""

    alu: int = costs.ALU_CYCLES
    mul: int = costs.MUL_CYCLES
    div: int = costs.DIV_CYCLES
    load: int = costs.LOAD_CYCLES
    store: int = costs.STORE_CYCLES
    branch: int = costs.BRANCH_CYCLES
    call: int = costs.CALL_CYCLES
    other: int = costs.OTHER_CYCLES


@dataclass
class ProcedureStats:
    """Per-procedure execution counts (``procedure_stats`` runs only).

    Counters are attributed to the procedure *executing* the
    instructions: cycles spent inside a callee belong to the callee, not
    the caller.  Summing ``cycles`` over all procedures (plus the
    ``<stub>`` pseudo-procedure) reproduces the program total exactly.
    """

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    save_restore: int = 0


@dataclass
class ExecutionStats:
    """Dynamic counts collected from one program run."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    singleton_loads: int = 0
    singleton_stores: int = 0
    save_restore_executed: int = 0
    call_counts: Counter = field(default_factory=Counter)
    call_edges: Counter = field(default_factory=Counter)
    per_procedure: dict = field(default_factory=dict)
    output: str = ""
    exit_code: int = 0

    @property
    def memory_references(self) -> int:
        return self.loads + self.stores

    @property
    def singleton_references(self) -> int:
        return self.singleton_loads + self.singleton_stores

    @property
    def total_calls(self) -> int:
        return sum(self.call_counts.values())


# Opcodes.
(
    _LDI, _MOV,
    _ADD, _SUB, _MUL, _DIV, _REM, _AND, _OR, _XOR, _SLL, _SRA,
    _ADDI, _SUBI, _MULI, _DIVI, _REMI, _ANDI, _ORI, _XORI, _SLLI, _SRAI,
    _CEQ, _CNE, _CLT, _CLE, _CGT, _CGE,
    _LDW, _STW,
    _B, _BEQ, _BNE, _BLT, _BLE, _BGT, _BGE,
    _BL, _BLR, _RET, _PRINT, _PUTC, _HALT,
) = range(43)

_ALU_OPS = {
    "+": _ADD, "-": _SUB, "*": _MUL, "/": _DIV, "%": _REM,
    "&": _AND, "|": _OR, "^": _XOR, "<<": _SLL, ">>": _SRA,
}
_ALUI_OPS = {
    "+": _ADDI, "-": _SUBI, "*": _MULI, "/": _DIVI, "%": _REMI,
    "&": _ANDI, "|": _ORI, "^": _XORI, "<<": _SLLI, ">>": _SRAI,
}
_CMP_OPS = {
    "==": _CEQ, "!=": _CNE, "<": _CLT, "<=": _CLE, ">": _CGT, ">=": _CGE,
}
_BC_OPS = {
    "==": _BEQ, "!=": _BNE, "<": _BLT, "<=": _BLE, ">": _BGT, ">=": _BGE,
}


def _decode(executable: Executable, costs: CostModel) -> list:
    decoded = []
    for instruction in executable.instructions:
        if isinstance(instruction, isa.LDI):
            decoded.append((_LDI, costs.alu, instruction.rd, instruction.imm))
        elif isinstance(instruction, isa.LDA):
            decoded.append(
                (_LDI, costs.alu, instruction.rd, instruction.resolved)
            )
        elif isinstance(instruction, isa.MOV):
            decoded.append((_MOV, costs.alu, instruction.rd, instruction.rs))
        elif isinstance(instruction, isa.ALU):
            opcode = _ALU_OPS[instruction.op]
            cost = costs.alu
            if opcode == _MUL:
                cost = costs.mul
            elif opcode in (_DIV, _REM):
                cost = costs.div
            decoded.append(
                (opcode, cost, instruction.rd, instruction.ra, instruction.rb)
            )
        elif isinstance(instruction, isa.ALUI):
            opcode = _ALUI_OPS[instruction.op]
            cost = costs.alu
            if opcode == _MULI:
                cost = costs.mul
            elif opcode in (_DIVI, _REMI):
                cost = costs.div
            decoded.append(
                (opcode, cost, instruction.rd, instruction.ra, instruction.imm)
            )
        elif isinstance(instruction, isa.CMP):
            decoded.append(
                (
                    _CMP_OPS[instruction.op],
                    costs.alu,
                    instruction.rd,
                    instruction.ra,
                    instruction.rb,
                )
            )
        elif isinstance(instruction, isa.LDW):
            decoded.append(
                (
                    _LDW,
                    costs.load,
                    instruction.rd,
                    instruction.base,
                    instruction.offset,
                    instruction.singleton,
                    # getattr: tolerate artifacts pickled before the
                    # slot existed (a schema bump evicts them anyway).
                    getattr(instruction, "save_restore", False),
                )
            )
        elif isinstance(instruction, isa.STW):
            decoded.append(
                (
                    _STW,
                    costs.store,
                    instruction.rs,
                    instruction.base,
                    instruction.offset,
                    instruction.singleton,
                    getattr(instruction, "save_restore", False),
                )
            )
        elif isinstance(instruction, isa.B):
            decoded.append((_B, costs.branch, instruction.target))
        elif isinstance(instruction, isa.BC):
            decoded.append(
                (
                    _BC_OPS[instruction.op],
                    costs.branch,
                    instruction.ra,
                    instruction.rb,
                    instruction.target,
                )
            )
        elif isinstance(instruction, isa.BL):
            decoded.append(
                (
                    _BL,
                    costs.call,
                    instruction.resolved,
                    instruction.callee,
                    tuple(instruction.clobbers),
                )
            )
        elif isinstance(instruction, isa.BLR):
            decoded.append(
                (
                    _BLR,
                    costs.call,
                    instruction.target,
                    tuple(instruction.clobbers),
                )
            )
        elif isinstance(instruction, isa.RET):
            decoded.append((_RET, costs.branch))
        elif isinstance(instruction, isa.SYS):
            opcode = _PRINT if instruction.kind == "print" else _PUTC
            decoded.append((opcode, costs.other, instruction.ra))
        elif isinstance(instruction, isa.HALT):
            decoded.append((_HALT, costs.other))
        else:  # pragma: no cover
            raise MachineError(f"cannot decode {instruction!r}")
    return decoded


class ConventionViolation(MachineError):
    """A callee destroyed a register its caller was entitled to keep.

    Raised only when the simulator runs with ``check_conventions=True``:
    at every call the registers *not* in the call's clobber set are
    snapshotted, and verified untouched at the matching return.  This
    validates the analyzer's directives (FREE preservation, MSPILL
    placement, caller-saves subtree bounds) against actual execution.
    """


def _flush_proc(per_proc, name, cycles, instructions, loads, stores,
                save_restore, marks) -> None:
    """Attribute the counter deltas since the last call boundary to the
    procedure that executed them (``marks`` is updated in place)."""
    entry = per_proc.get(name)
    if entry is None:
        entry = per_proc[name] = [0, 0, 0, 0, 0]
    entry[0] += cycles - marks[0]
    entry[1] += instructions - marks[1]
    entry[2] += loads - marks[2]
    entry[3] += stores - marks[3]
    entry[4] += save_restore - marks[4]
    marks[0] = cycles
    marks[1] = instructions
    marks[2] = loads
    marks[3] = stores
    marks[4] = save_restore


class Simulator:
    """Facade over the pluggable execution backends.

    Decoding, accounting configuration, and result shape are shared;
    ``backend`` picks how the decoded stream is executed (``compiled``
    closures or the ``reference`` interpreter loop).  Both backends
    produce bit-identical :class:`ExecutionStats` and raise the same
    exceptions at the same instruction boundaries.
    """

    def __init__(
        self,
        executable: Executable,
        memory_words: int = 1 << 20,
        cost_model: CostModel | None = None,
        check_conventions: bool = False,
        volatile_registers: set | None = None,
        procedure_stats: bool | None = None,
        backend: str | None = None,
    ):
        self.executable = executable
        self.memory_words = memory_words
        self.costs = cost_model or CostModel()
        self.check_conventions = check_conventions
        # Registers holding interprocedurally promoted globals: callees
        # rewrite them by design, so the convention checker skips them.
        self.volatile_registers = frozenset(volatile_registers or ())
        # None = decide at run time: attribute per-procedure counters
        # whenever a trace is being collected.
        self.procedure_stats = procedure_stats
        self.backend = resolve_backend(backend)
        self._decoded = _decode(executable, self.costs)
        self._entry_names = {
            pc: name for name, pc in executable.function_entries.items()
        }
        # (track, check) -> compiled program, owned by machine.compiled.
        self._compiled_cache: dict = {}

    def run(self, max_cycles: int = 200_000_000) -> ExecutionStats:
        """Execute from the startup stub until HALT."""
        if self.backend == "compiled":
            from repro.machine.compiled import run_compiled

            return run_compiled(self, max_cycles)
        return self._run_reference(max_cycles)

    def _run_reference(self, max_cycles: int) -> ExecutionStats:
        """The pre-decoded tuple interpreter (semantic baseline)."""
        stats = ExecutionStats()
        regs = [0] * NUM_REGISTERS
        memory = [0] * self.memory_words
        base = self.executable.data_base
        for index, word in enumerate(self.executable.data_words):
            memory[base + index] = word
        regs[SP] = self.memory_words
        pc = self.executable.entry_pc
        decoded = self._decoded
        code_size = len(decoded)
        output: list[str] = []
        call_stack = ["<stub>"]
        check_frames: list | None = (
            [] if self.check_conventions else None
        )
        volatile = self.volatile_registers
        cycles = 0
        instructions = 0
        save_restore = 0
        entry_names = self._entry_names
        memory_words = self.memory_words
        tracer = current_tracer()
        track = (
            tracer.enabled
            if self.procedure_stats is None
            else self.procedure_stats
        )
        per_proc: dict = {}
        marks = [0, 0, 0, 0, 0]

        while True:
            if not 0 <= pc < code_size:
                raise MachineError(f"pc out of range: {pc}")
            op = decoded[pc]
            code = op[0]
            cycles += op[1]
            instructions += 1
            if cycles > max_cycles:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_cycles} cycles"
                )
            if code == _LDW:
                address = regs[op[3]] + op[4]
                if not 0 <= address < memory_words:
                    raise MachineError(f"load from bad address {address}")
                if op[2]:
                    regs[op[2]] = memory[address]
                stats.loads += 1
                if op[5]:
                    stats.singleton_loads += 1
                if op[6]:
                    save_restore += 1
                pc += 1
            elif code == _STW:
                address = regs[op[3]] + op[4]
                if not base <= address < memory_words:
                    raise MachineError(f"store to bad address {address}")
                memory[address] = regs[op[2]]
                stats.stores += 1
                if op[5]:
                    stats.singleton_stores += 1
                if op[6]:
                    save_restore += 1
                pc += 1
            elif code == _ADD or code == _ADDI:
                value = (regs[op[3]] + (regs[op[4]] if code == _ADD else op[4])) & _WORD_MASK
                if value > _INT_MAX:
                    value -= 0x100000000
                if op[2]:
                    regs[op[2]] = value
                pc += 1
            elif code == _SUB or code == _SUBI:
                value = (regs[op[3]] - (regs[op[4]] if code == _SUB else op[4])) & _WORD_MASK
                if value > _INT_MAX:
                    value -= 0x100000000
                if op[2]:
                    regs[op[2]] = value
                pc += 1
            elif code == _LDI:
                if op[2]:
                    regs[op[2]] = op[3]
                pc += 1
            elif code == _MOV:
                if op[2]:
                    regs[op[2]] = regs[op[3]]
                pc += 1
            elif _BEQ <= code <= _BGE:
                a = regs[op[2]]
                b = regs[op[3]]
                if code == _BEQ:
                    taken = a == b
                elif code == _BNE:
                    taken = a != b
                elif code == _BLT:
                    taken = a < b
                elif code == _BLE:
                    taken = a <= b
                elif code == _BGT:
                    taken = a > b
                else:
                    taken = a >= b
                pc = op[4] if taken else pc + 1
            elif code == _B:
                pc = op[2]
            elif _CEQ <= code <= _CGE:
                a = regs[op[3]]
                b = regs[op[4]]
                if code == _CEQ:
                    value = int(a == b)
                elif code == _CNE:
                    value = int(a != b)
                elif code == _CLT:
                    value = int(a < b)
                elif code == _CLE:
                    value = int(a <= b)
                elif code == _CGT:
                    value = int(a > b)
                else:
                    value = int(a >= b)
                if op[2]:
                    regs[op[2]] = value
                pc += 1
            elif _MUL <= code <= _SRA or _MULI <= code <= _SRAI:
                a = regs[op[3]]
                b = regs[op[4]] if code <= _SRA else op[4]
                if code == _MUL or code == _MULI:
                    value = a * b
                elif code == _DIV or code == _DIVI:
                    if b == 0:
                        raise MachineError("division by zero")
                    value = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        value = -value
                elif code == _REM or code == _REMI:
                    if b == 0:
                        raise MachineError("remainder by zero")
                    quotient = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        quotient = -quotient
                    value = a - quotient * b
                elif code == _AND or code == _ANDI:
                    value = a & b
                elif code == _OR or code == _ORI:
                    value = a | b
                elif code == _XOR or code == _XORI:
                    value = a ^ b
                elif code == _SLL or code == _SLLI:
                    value = a << (b & 31)
                else:  # arithmetic shift right
                    value = a >> (b & 31)
                value &= _WORD_MASK
                if value > _INT_MAX:
                    value -= 0x100000000
                if op[2]:
                    regs[op[2]] = value
                pc += 1
            elif code == _BL:
                regs[RP] = pc + 1
                target = op[2]
                callee = op[3]
                stats.call_counts[callee] += 1
                stats.call_edges[(call_stack[-1], callee)] += 1
                if track:
                    _flush_proc(per_proc, call_stack[-1], cycles,
                                instructions, stats.loads, stats.stores,
                                save_restore, marks)
                call_stack.append(callee)
                if check_frames is not None:
                    preserved = [
                        i for i in range(NUM_REGISTERS)
                        if i != RP and i not in op[4] and i not in volatile
                    ]
                    check_frames.append(
                        (pc + 1, callee, preserved,
                         [regs[i] for i in preserved])
                    )
                pc = target
            elif code == _BLR:
                target = regs[op[2]]
                callee = entry_names.get(target)
                if callee is None:
                    raise MachineError(
                        f"indirect call to non-function address {target}"
                    )
                regs[RP] = pc + 1
                stats.call_counts[callee] += 1
                stats.call_edges[(call_stack[-1], callee)] += 1
                if track:
                    _flush_proc(per_proc, call_stack[-1], cycles,
                                instructions, stats.loads, stats.stores,
                                save_restore, marks)
                call_stack.append(callee)
                if check_frames is not None:
                    preserved = [
                        i for i in range(NUM_REGISTERS)
                        if i != RP and i not in op[3] and i not in volatile
                    ]
                    check_frames.append(
                        (pc + 1, callee, preserved,
                         [regs[i] for i in preserved])
                    )
                pc = target
            elif code == _RET:
                if track:
                    _flush_proc(per_proc, call_stack[-1], cycles,
                                instructions, stats.loads, stats.stores,
                                save_restore, marks)
                if len(call_stack) > 1:
                    call_stack.pop()
                pc = regs[RP]
                if check_frames is not None and check_frames:
                    ret_pc, callee, preserved, values = check_frames.pop()
                    if ret_pc == pc:
                        for register, value in zip(preserved, values):
                            if regs[register] != value:
                                raise ConventionViolation(
                                    f"call to {callee} destroyed "
                                    f"register r{register} "
                                    f"({value} -> {regs[register]}) "
                                    f"not in its clobber set"
                                )
                    else:  # pragma: no cover - no tail calls exist
                        check_frames.append(
                            (ret_pc, callee, preserved, values)
                        )
            elif code == _PRINT:
                output.append(str(regs[op[2]]))
                output.append("\n")
                pc += 1
            elif code == _PUTC:
                output.append(chr(regs[op[2]] & 0xFF))
                pc += 1
            elif code == _HALT:
                break
            else:  # pragma: no cover
                raise MachineError(f"bad opcode {code}")

        stats.cycles = cycles
        stats.instructions = instructions
        stats.save_restore_executed = save_restore
        stats.output = "".join(output)
        stats.exit_code = regs[RV]
        if track:
            # Final flush: instructions since the last call boundary
            # (including the HALT itself) belong to the procedure on top
            # of the stack.
            _flush_proc(per_proc, call_stack[-1], cycles, instructions,
                        stats.loads, stats.stores, save_restore, marks)
            stats.per_procedure = {
                name: ProcedureStats(*entry)
                for name, entry in sorted(per_proc.items())
            }
            if tracer.enabled:
                tracer.event(
                    "execution",
                    cycles=cycles,
                    instructions=instructions,
                    memory_references=stats.memory_references,
                    singleton_references=stats.singleton_references,
                    save_restore_executed=save_restore,
                    exit_code=stats.exit_code,
                    per_procedure={
                        name: {
                            "cycles": entry[0],
                            "instructions": entry[1],
                            "loads": entry[2],
                            "stores": entry[3],
                            "save_restore": entry[4],
                        }
                        for name, entry in sorted(per_proc.items())
                    },
                )
        return stats


def run_executable(
    executable: Executable,
    max_cycles: int = 200_000_000,
    memory_words: int = 1 << 20,
    cost_model: CostModel | None = None,
    check_conventions: bool = False,
    volatile_registers: set | None = None,
    procedure_stats: bool | None = None,
    backend: str | None = None,
) -> ExecutionStats:
    """Convenience wrapper: simulate ``executable`` and return stats.

    Accepts the full :class:`Simulator` configuration so callers on the
    convenience path (``obs/report.py``, ``driver/pipeline.py``) can
    enable convention checking, per-procedure attribution, and backend
    selection without constructing the simulator themselves.
    """
    simulator = Simulator(
        executable,
        memory_words,
        cost_model,
        check_conventions=check_conventions,
        volatile_registers=volatile_registers,
        procedure_stats=procedure_stats,
        backend=backend,
    )
    return simulator.run(max_cycles)
